// Package server implements greendimmd's simulation service: a bounded
// job queue feeding a worker pool, where each job is one deterministic
// simulation (a paper experiment or a parameterized §6.3 VM-server
// scenario) run on its own sim.Engine. Because identical specs always
// produce identical results, finished jobs are cached content-addressed
// by a canonical hash of the spec, and re-submissions are served without
// re-running the engine.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"greendimm/internal/exp"
)

// Job kinds.
const (
	KindExperiment = "experiment" // one of the paper's tables/figures
	KindVMServer   = "vmserver"   // parameterized §6.3 VM-consolidation run
)

// JobSpec is the wire form of one simulation job. Exactly one of
// Experiment and VMServer must be set, matching Kind.
type JobSpec struct {
	Kind       string          `json:"kind"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	VMServer   *exp.VMScenario `json:"vmserver,omitempty"`

	// Cells, when non-nil, restricts an experiment job to the sweep-cell
	// slice [Lo, Hi): the job runs only those cells and returns their
	// artifacts (Result.Cells) instead of a rendered report. Only
	// Shardable experiments accept it. Unlike the execution knobs below
	// it changes the result, so it IS part of the cache key; a nil Cells
	// leaves existing spec hashes unchanged.
	Cells *CellRangeSpec `json:"cells,omitempty"`

	// TimeoutSec bounds the job's wall-clock execution (0 = server
	// default, capped at the server maximum). An execution knob, not
	// part of the simulated world: it is excluded from the cache key.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Parallelism caps the fan-out of the job's internal experiment
	// sweeps (0 = serial, the default: the worker pool already
	// parallelizes across jobs). Extra sweep workers beyond the job's
	// own worker only run when the server's CPU budget has free slots,
	// so requesting a high value cannot oversubscribe the machine.
	// Sweep results are byte-identical at every parallelism, so — like
	// TimeoutSec — this is an execution knob excluded from the cache
	// key: specs differing only here share one cache entry.
	Parallelism int `json:"parallelism,omitempty"`

	// EngineShards, when >= 2, runs each of the job's engines with
	// channel-sharded execution (exp.Hooks.EngineShards): per-channel
	// event lanes fan out to workers where the memory controller's
	// lookahead allows. Shard workers draw on the same server CPU budget
	// as extra sweep workers, so parallelism x shards cannot
	// oversubscribe the machine. Results are byte-identical at every
	// setting, so — like Parallelism — this is an execution knob excluded
	// from the cache key.
	EngineShards int `json:"engine_shards,omitempty"`
}

// MaxJobParallelism bounds the per-job sweep fan-out a spec may request.
const MaxJobParallelism = 64

// MaxEngineShards bounds the per-engine shard count a spec may request;
// the paper's organizations top out at four channels, so anything beyond
// a small multiple is waste.
const MaxEngineShards = 16

// CellRangeSpec is the wire form of a sweep cell range [Lo, Hi). The
// zero range is invalid on the wire: the empty count probe is internal
// to shard planning (exp.CellCount) and never crosses the API.
type CellRangeSpec struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ExperimentSpec selects a registry experiment — the same ids and knobs
// as `greendimm -experiment <id> [-quick] [-seed n]`.
type ExperimentSpec struct {
	ID    string `json:"id"`
	Quick bool   `json:"quick,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
}

// cacheKeySpec is the hashed portion of a spec: everything that
// influences the simulation's output and nothing that doesn't.
type cacheKeySpec struct {
	Kind       string          `json:"kind"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	VMServer   *exp.VMScenario `json:"vmserver,omitempty"`
	Cells      *CellRangeSpec  `json:"cells,omitempty"`
}

// normalized validates the spec and returns it with defaults made
// explicit, so equivalent submissions share one cache entry.
func (s JobSpec) normalized() (JobSpec, error) {
	if s.TimeoutSec < 0 {
		return s, fmt.Errorf("timeout_sec %g must be >= 0", s.TimeoutSec)
	}
	if s.Parallelism < 0 || s.Parallelism > MaxJobParallelism {
		return s, fmt.Errorf("parallelism %d must be in [0, %d]", s.Parallelism, MaxJobParallelism)
	}
	if s.EngineShards < 0 || s.EngineShards > MaxEngineShards {
		return s, fmt.Errorf("engine_shards %d must be in [0, %d]", s.EngineShards, MaxEngineShards)
	}
	switch s.Kind {
	case KindExperiment:
		if s.Experiment == nil || s.VMServer != nil {
			return s, fmt.Errorf("kind %q requires the experiment payload and no vmserver payload", s.Kind)
		}
		e := *s.Experiment
		if e.Seed == 0 {
			e.Seed = 1 // the CLI's -seed default
		}
		if _, ok := exp.Registry()[e.ID]; !ok {
			return s, fmt.Errorf("unknown experiment %q", e.ID)
		}
		if c := s.Cells; c != nil {
			if !exp.Shardable(e.ID) {
				return s, fmt.Errorf("experiment %q does not support cell ranges (shardable: %v)",
					e.ID, exp.ShardableExperiments())
			}
			if c.Lo < 0 || c.Lo >= c.Hi {
				return s, fmt.Errorf("cells [%d,%d) must satisfy 0 <= lo < hi", c.Lo, c.Hi)
			}
		}
		s.Experiment = &e
	case KindVMServer:
		if s.VMServer == nil || s.Experiment != nil {
			return s, fmt.Errorf("kind %q requires the vmserver payload and no experiment payload", s.Kind)
		}
		if s.Cells != nil {
			return s, fmt.Errorf("kind %q does not support cell ranges", s.Kind)
		}
		v := s.VMServer.Normalized()
		if err := v.Validate(); err != nil {
			return s, err
		}
		s.VMServer = &v
	default:
		return s, fmt.Errorf("unknown kind %q (want %q or %q)", s.Kind, KindExperiment, KindVMServer)
	}
	return s, nil
}

// Normalize validates the spec and returns it with defaults made
// explicit — the exported entry point for out-of-process callers
// (internal/cluster) that must agree with the daemon on what "the same
// job" means.
func (s JobSpec) Normalize() (JobSpec, error) { return s.normalized() }

// SpecHash returns the content address of a spec: the hex SHA-256 of its
// normalized cache-key form. Two specs with equal SpecHash describe the
// same simulation and — determinism being the repo-wide invariant — must
// produce byte-identical reports, which is what the cluster merge
// cross-checks.
func SpecHash(s JobSpec) (string, error) {
	norm, err := s.normalized()
	if err != nil {
		return "", &InvalidSpecError{Err: err}
	}
	return norm.hash()
}

// hash returns the spec's content address: the hex SHA-256 of the
// normalized spec's canonical JSON. Call on the normalized form;
// encoding/json renders struct fields in declaration order, so the bytes
// are deterministic.
func (s JobSpec) hash() (string, error) {
	b, err := json.Marshal(cacheKeySpec{Kind: s.Kind, Experiment: s.Experiment, VMServer: s.VMServer, Cells: s.Cells})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
