package server

import (
	"encoding/json"
	"strings"
	"testing"

	"greendimm/internal/exp"
)

// fig8Quick is the shard-test workhorse: a real 12-cell matrix sweep
// cheap enough to run many times (quick mode, ~2ms/cell).
func fig8Quick() JobSpec {
	return JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Quick: true, Seed: 1}}
}

// TestRangeJobsReassembleFullReport is the server-level decomposition
// check: disjoint range jobs return artifact sets; replaying their
// union into a full run reproduces the uninterrupted report byte for
// byte. This is exactly the contract the cluster's shard merge and the
// store's crash resume both stand on.
func TestRangeJobsReassembleFullReport(t *testing.T) {
	want, err := Execute(fig8Quick(), RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Text == "" {
		t.Fatal("full run rendered no report")
	}

	var arts []exp.CellArtifact
	for _, r := range [][2]int{{0, 5}, {5, 12}} {
		spec := fig8Quick()
		spec.Cells = &CellRangeSpec{Lo: r[0], Hi: r[1]}
		res, err := Execute(spec, RunHooks{})
		if err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
		// Range results are pure artifact payloads: no rendering, no
		// execution accounting — the bytes depend on the spec alone.
		if res.Text != "" || res.SimSeconds != 0 || len(res.Tables) != 0 {
			t.Fatalf("range %v result carries more than artifacts: %+v", r, res)
		}
		if len(res.Cells) != r[1]-r[0] {
			t.Fatalf("range %v returned %d cells", r, len(res.Cells))
		}
		for i := 1; i < len(res.Cells); i++ {
			if res.Cells[i-1].Key >= res.Cells[i].Key {
				t.Fatalf("range %v cells not sorted by key", r)
			}
		}
		arts = append(arts, res.Cells...)
	}

	got, err := Execute(fig8Quick(), RunHooks{Cells: exp.NewCellSet(arts)})
	if err != nil {
		t.Fatal(err)
	}
	// Text (the full rendering of tables and series) is the byte-identity
	// check; SimSeconds legitimately differs — replayed cells simulate
	// nothing.
	if got.Text != want.Text {
		t.Fatalf("report reassembled from range artifacts diverged:\n%s\nvs\n%s", got.Text, want.Text)
	}
	wb, _ := json.Marshal(want.Tables)
	gb, _ := json.Marshal(got.Tables)
	if string(wb) != string(gb) {
		t.Fatal("tables diverged between full run and artifact replay")
	}
}

// TestRangeSpecValidation pins the API-facing range errors.
func TestRangeSpecValidation(t *testing.T) {
	spec := fig8Quick()
	spec.Cells = &CellRangeSpec{Lo: 3, Hi: 3}
	if _, err := Execute(spec, RunHooks{}); err == nil || !strings.Contains(err.Error(), "0 <= lo < hi") {
		t.Fatalf("empty range: %v", err)
	}
	spec = JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost"}, Cells: &CellRangeSpec{Lo: 0, Hi: 1}}
	if _, err := Execute(spec, RunHooks{}); err == nil || !strings.Contains(err.Error(), "does not support cell ranges") {
		t.Fatalf("non-shardable experiment accepted a range: %v", err)
	}
	if n, err := CellCount(fig8Quick()); err != nil || n != 12 {
		t.Fatalf("CellCount = %d, %v", n, err)
	}
	if _, err := CellCount(JobSpec{Kind: KindVMServer, VMServer: &exp.VMScenario{Hours: 0.01}}); err == nil {
		t.Fatal("CellCount accepted a vmserver spec")
	}
}

// TestSortCells pins canonicalization: sorted, same-bytes duplicates
// collapse, conflicting duplicates are an error (a broken determinism
// invariant must surface, not resolve by picking a winner).
func TestSortCells(t *testing.T) {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	out, err := sortCells([]exp.CellArtifact{
		{Key: "b", Value: raw(`2`)},
		{Key: "a", Value: raw(`1`)},
		{Key: "b", Value: raw(`2`)},
	})
	if err != nil || len(out) != 2 || out[0].Key != "a" || out[1].Key != "b" {
		t.Fatalf("sortCells = %v, %v", out, err)
	}
	if _, err := sortCells([]exp.CellArtifact{
		{Key: "a", Value: raw(`1`)},
		{Key: "a", Value: raw(`2`)},
	}); err == nil {
		t.Fatal("conflicting duplicate keys did not error")
	}
}
