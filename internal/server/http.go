package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"greendimm/internal/core"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec; 202 queued, 200 cache
//	                            hit, 400 invalid, 429 queue full, 503
//	                            draining
//	GET    /v1/jobs             list retained jobs (no results);
//	                            ?status= filters, ?limit=/&offset= page
//	GET    /v1/jobs/{id}        one job, with result once succeeded;
//	                            ?wait=30s blocks until terminal or
//	                            timeout
//	GET    /v1/jobs/{id}/trace  the job's lifecycle trace (obs.TraceView)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/policies         registered block-selection policies and
//	                            trackers (schemas, defaults) plus this
//	                            daemon's default policy
//	GET    /v1/memo/keys        this daemon's warm memo-key digest
//	POST   /v1/memo/entries     batched memo-entry fetch ({"keys": [...]})
//	GET    /healthz             liveness + drain state
//	GET    /metrics             Prometheus text format
//
// Every error response carries the v1 envelope: {"error": {"code":
// "<machine code>", "message": "...", "retry_after_s": N}} where code
// is one of the Code constants and retry_after_s appears only on
// queue_full.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/memo/keys", s.handleMemoKeys)
	mux.HandleFunc("POST /v1/memo/entries", s.handleMemoFetch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Machine-readable error codes, stable across releases: clients switch
// on these instead of matching message strings or bare HTTP statuses.
const (
	CodeInvalidSpec = "invalid_spec" // 400: malformed body or failed validation
	CodeQueueFull   = "queue_full"   // 429: bounded queue rejected the job
	CodeDraining    = "draining"     // 503: shutting down, accepting no work
	CodeNotFound    = "not_found"    // 404: unknown job id
	CodeInternal    = "internal"     // 500: anything else
)

// ErrorBody is the payload of the v1 error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterS mirrors the Retry-After header on queue_full, for
	// clients that only read bodies.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// ErrorEnvelope is the JSON shape of every v1 error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError emits the envelope. retryAfterS > 0 also sets the
// Retry-After header.
func writeError(w http.ResponseWriter, status int, code, message string, retryAfterS int) {
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	}
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: message, RetryAfterS: retryAfterS}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // catch misspelled knobs instead of silently defaulting
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("decoding job spec: %v", err), 0)
		return
	}
	v, err := s.Submit(spec)
	var invalid *InvalidSpecError
	switch {
	case errors.As(err, &invalid):
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, invalid.Error(), 0)
	case errors.Is(err, ErrQueueFull):
		// The hint tracks the p90 job wall time so cluster backoff can
		// wait roughly one queue-slot turnover instead of hammering.
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error(), s.RetryAfterHint())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error(), 0)
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
	case v.Cached:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusOK, v)
	default:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q, err := parseListQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error(), 0)
		return
	}
	jobs, total := s.List(q)
	writeJSON(w, http.StatusOK, struct {
		Jobs  []JobView `json:"jobs"`
		Total int       `json:"total"`
	}{Jobs: jobs, Total: total})
}

// parseListQuery validates ?status=, ?limit= and ?offset=.
func parseListQuery(r *http.Request) (ListQuery, error) {
	var q ListQuery
	vals := r.URL.Query()
	if st := vals.Get("status"); st != "" {
		switch s := JobState(st); s {
		case StateQueued, StateRunning, StateSucceeded, StateFailed, StateCanceled:
			q.Status = s
		case "recovered":
			// Not a lifecycle state: selects jobs (any state) that the
			// daemon re-enqueued from its durable store after a restart.
			q.Recovered = true
		default:
			return q, fmt.Errorf("unknown status %q (states, or \"recovered\" for jobs resumed after a restart)", st)
		}
	}
	for name, dst := range map[string]*int{"limit": &q.Limit, "offset": &q.Offset} {
		if raw := vals.Get(name); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return q, fmt.Errorf("invalid %s %q", name, raw)
			}
			*dst = n
		}
	}
	return q, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wait := r.URL.Query().Get("wait"); wait != "" {
		ctx := r.Context()
		if d, err := time.ParseDuration(wait); err == nil && d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		v, err := s.Wait(ctx, id)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, v)
		case errors.Is(err, ctx.Err()) && ctx.Err() != nil:
			// Timed out waiting: report current state instead of failing.
			if v, ok := s.Get(id); ok {
				writeJSON(w, http.StatusOK, v)
				return
			}
			writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+id, 0)
		default:
			writeError(w, http.StatusNotFound, CodeNotFound, err.Error(), 0)
		}
		return
	}
	v, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+id, 0)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tv, ok := s.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+id, 0)
		return
	}
	writeJSON(w, http.StatusOK, tv)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+id, 0)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// PoliciesView is the GET /v1/policies payload: every registered
// policy and tracker with its parameter schema (names, defaults, valid
// ranges), plus the default policy this daemon applies to vmserver jobs
// that omit one. Clients build valid structured policy objects from the
// schemas instead of guessing parameter names.
type PoliciesView struct {
	Default  core.PolicySpec    `json:"default"`
	Policies []core.PolicyInfo  `json:"policies"`
	Trackers []core.TrackerInfo `json:"trackers"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	def := core.PolicySpec{Name: core.PolicyFreeFirst}
	if s.cfg.DefaultPolicy != nil {
		def = *s.cfg.DefaultPolicy
	}
	writeJSON(w, http.StatusOK, PoliciesView{
		Default:  def,
		Policies: core.PolicyInfos(),
		Trackers: core.TrackerInfos(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{Status: status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.renderMetrics()))
}
