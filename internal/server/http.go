package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs       submit a JobSpec; 202 queued, 200 cache hit,
//	                      400 invalid, 429 queue full, 503 draining
//	GET    /v1/jobs       list retained jobs (no results)
//	GET    /v1/jobs/{id}  one job, with result once succeeded;
//	                      ?wait=30s blocks until terminal or timeout
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness + drain state
//	GET    /metrics       Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // catch misspelled knobs instead of silently defaulting
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	v, err := s.Submit(spec)
	var invalid *InvalidSpecError
	switch {
	case errors.As(err, &invalid):
		writeJSON(w, http.StatusBadRequest, apiError{Error: invalid.Error()})
	case errors.Is(err, ErrQueueFull):
		// The hint tracks the mean job wall time so cluster backoff can
		// wait roughly one queue-slot turnover instead of hammering.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	case v.Cached:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusOK, v)
	default:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wait := r.URL.Query().Get("wait"); wait != "" {
		ctx := r.Context()
		if d, err := time.ParseDuration(wait); err == nil && d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		v, err := s.Wait(ctx, id)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, v)
		case errors.Is(err, ctx.Err()) && ctx.Err() != nil:
			// Timed out waiting: report current state instead of failing.
			if v, ok := s.Get(id); ok {
				writeJSON(w, http.StatusOK, v)
				return
			}
			writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + id})
		default:
			writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		}
		return
	}
	v, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Cancel(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{Status: status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.renderMetrics()))
}
