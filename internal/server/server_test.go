package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/metrics"
)

// specN builds distinct valid specs (different seeds → different hashes).
func specN(n int64) JobSpec {
	return JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost", Seed: n}}
}

// newTestServer builds a server with a fake runner.
func newTestServer(t *testing.T, cfg Config, runner func(JobSpec, RunHooks) (*Result, error)) *Server {
	t.Helper()
	cfg.Runner = runner
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func waitState(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return v
}

func TestPoolRunsJobsAndCaches(t *testing.T) {
	var runs atomic.Int64
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, func(spec JobSpec, h RunHooks) (*Result, error) {
		runs.Add(1)
		return &Result{Text: fmt.Sprintf("seed %d", spec.Experiment.Seed), SimSeconds: 2}, nil
	})
	v1, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	v1 = waitState(t, s, v1.ID)
	if v1.State != StateSucceeded || v1.Cached || v1.Result == nil {
		t.Fatalf("first run: %+v", v1)
	}
	if v1.Result.WallSeconds <= 0 {
		t.Error("wall seconds not recorded")
	}

	// Identical re-submission: served from cache, no new execution.
	v2, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != StateSucceeded || !v2.Cached {
		t.Fatalf("re-submission not served from cache: %+v", v2)
	}
	if v2.Result == nil || v2.Result.Text != "seed 1" {
		t.Fatalf("cached result wrong: %+v", v2.Result)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
	if v2.ID == v1.ID {
		t.Error("cache hit should still mint a new job id")
	}

	// A different spec misses the cache.
	v3, err := s.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	if waitState(t, s, v3.ID).Cached {
		t.Error("distinct spec reported cached")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner executed %d times, want 2", got)
	}
}

func TestPoolQueueFullReturnsErr(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2}, func(JobSpec, RunHooks) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{}, nil
	})
	defer close(release)

	// One running + two queued fill the service.
	if _, err := s.Submit(specN(1)); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds job 1; the queue is empty again
	for i := int64(2); i <= 3; i++ {
		if _, err := s.Submit(specN(i)); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if _, err := s.Submit(specN(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into full queue: err = %v, want ErrQueueFull", err)
	}
	st := s.snapshot()
	if st.rejectedFull != 1 {
		t.Errorf("rejectedFull = %d, want 1", st.rejectedFull)
	}
}

func TestPoolConcurrentJobsInFlight(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	s := newTestServer(t, Config{Workers: workers, QueueDepth: 64}, func(JobSpec, RunHooks) (*Result, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		inFlight.Add(-1)
		return &Result{}, nil
	})
	var ids []string
	for i := int64(1); i <= 12; i++ {
		v, err := s.Submit(specN(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := waitState(t, s, id); v.State != StateSucceeded {
			t.Fatalf("job %s: %+v", id, v)
		}
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak.Load())
	}
	if peak.Load() > workers {
		t.Errorf("peak concurrency %d exceeds pool size %d", peak.Load(), workers)
	}
}

func TestPoolDeadlineCancelsJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, func(spec JobSpec, h RunHooks) (*Result, error) {
		// Model the engine's stop-check polling loop.
		for !h.Stop() {
			time.Sleep(time.Millisecond)
		}
		return nil, exp.ErrInterrupted
	})
	spec := specN(1)
	spec.TimeoutSec = 0.05
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", v.State)
	}
	if v.Error == "" {
		t.Error("canceled job should carry an error message")
	}
	st := s.snapshot()
	if st.canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", st.canceled)
	}
}

func TestPoolClientCancel(t *testing.T) {
	releaseQueued := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, func(spec JobSpec, h RunHooks) (*Result, error) {
		if spec.Experiment.Seed == 1 {
			<-releaseQueued
			return &Result{}, nil
		}
		for !h.Stop() {
			time.Sleep(time.Millisecond)
		}
		return nil, exp.ErrInterrupted
	})
	v1, _ := s.Submit(specN(1)) // occupies the worker
	v2, _ := s.Submit(specN(2)) // waits in queue

	// Cancel while queued: immediate.
	cv, ok := s.Cancel(v2.ID)
	if !ok || cv.State != StateCanceled {
		t.Fatalf("cancel queued job: %+v (ok=%v)", cv, ok)
	}
	close(releaseQueued)
	waitState(t, s, v1.ID)

	// Cancel while running: the stop predicate fires.
	v3, _ := s.Submit(specN(3))
	for {
		cur, _ := s.Get(v3.ID)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := s.Cancel(v3.ID); !ok {
		t.Fatal("cancel running job: unknown id")
	}
	if v := waitState(t, s, v3.ID); v.State != StateCanceled {
		t.Fatalf("running job after cancel: %+v", v)
	}

	// Unknown id.
	if _, ok := s.Cancel("nope"); ok {
		t.Error("cancel of unknown id reported ok")
	}
}

func TestPoolShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	var finished atomic.Int64
	cfg := Config{Workers: 1, QueueDepth: 4,
		Runner: func(JobSpec, RunHooks) (*Result, error) {
			<-release
			finished.Add(1)
			return &Result{}, nil
		}}
	s := New(cfg)
	var ids []string
	for i := int64(1); i <= 3; i++ {
		v, err := s.Submit(specN(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Draining servers reject new work...
	for {
		if s.Draining() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(specN(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	// ...but in-flight and queued jobs run to completion.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := finished.Load(); got != 3 {
		t.Errorf("finished %d jobs during drain, want 3", got)
	}
	for _, id := range ids {
		v, ok := s.Get(id)
		if !ok || v.State != StateSucceeded {
			t.Errorf("job %s after drain: %+v", id, v)
		}
	}
}

func TestPoolShutdownForceCancelsOnContextExpiry(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4,
		Runner: func(spec JobSpec, h RunHooks) (*Result, error) {
			for !h.Stop() {
				time.Sleep(time.Millisecond)
			}
			return nil, exp.ErrInterrupted
		}})
	v, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown err = %v, want DeadlineExceeded", err)
	}
	got, _ := s.Get(v.ID)
	if got.State != StateCanceled {
		t.Errorf("job after forced shutdown: %s, want canceled", got.State)
	}
}

func TestPoolInvalidSpecRejected(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, func(JobSpec, RunHooks) (*Result, error) {
		return &Result{}, nil
	})
	_, err := s.Submit(JobSpec{Kind: "bogus"})
	var invalid *InvalidSpecError
	if !errors.As(err, &invalid) {
		t.Fatalf("err = %v, want InvalidSpecError", err)
	}
	if st := s.snapshot(); st.rejectedInvalid != 1 {
		t.Errorf("rejectedInvalid = %d, want 1", st.rejectedInvalid)
	}
}

func TestPoolFailedJob(t *testing.T) {
	boom := errors.New("boom")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, func(JobSpec, RunHooks) (*Result, error) {
		return nil, boom
	})
	v, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateFailed || v.Error != "boom" {
		t.Fatalf("failed job view: %+v", v)
	}
	// Failures are not cached: a re-submission runs again.
	v2, err := s.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached {
		t.Error("failure was served from cache")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheEntries: 2},
		func(spec JobSpec, h RunHooks) (*Result, error) {
			return &Result{Text: fmt.Sprint(spec.Experiment.Seed)}, nil
		})
	run := func(seed int64) { v, _ := s.Submit(specN(seed)); waitState(t, s, v.ID) }
	run(1)
	run(2)
	run(3) // evicts seed 1
	if st := s.snapshot(); st.cacheSize != 2 {
		t.Fatalf("cache size = %d, want 2", st.cacheSize)
	}
	v, _ := s.Submit(specN(1))
	if v.Cached {
		t.Error("evicted entry served from cache")
	}
	waitState(t, s, v.ID)
	if v2, _ := s.Submit(specN(3)); !v2.Cached {
		t.Error("recent entry missing from cache")
	}
}

func TestJobRecordPruning(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxJobRecords: 3, CacheEntries: 1},
		func(spec JobSpec, h RunHooks) (*Result, error) { return &Result{}, nil })
	var last JobView
	for i := int64(1); i <= 6; i++ {
		v, err := s.Submit(specN(i))
		if err != nil {
			t.Fatal(err)
		}
		last = waitState(t, s, v.ID)
	}
	views, total := s.List(ListQuery{})
	if len(views) != 3 || total != 3 {
		t.Errorf("retained %d records (total %d), want 3", len(views), total)
	}
	if _, ok := s.Get(last.ID); !ok {
		t.Error("newest record was pruned")
	}
	if _, ok := s.Get("j000001"); ok {
		t.Error("oldest record survived pruning")
	}
}

// TestRetryAfterHint checks the hint's derivation and clamping: 1 before
// any execution, the ceiling of the p90 wall-time bucket bound
// afterwards, never outside [1, 60].
func TestRetryAfterHint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1},
		func(spec JobSpec, h RunHooks) (*Result, error) { return &Result{}, nil })
	if got := s.RetryAfterHint(); got != 1 {
		t.Errorf("hint before any execution = %d, want 1", got)
	}
	cases := []struct {
		walls []float64
		want  int
	}{
		{[]float64{0.01, 0.02, 0.01}, 1},          // sub-second tail clamps up to 1
		{[]float64{2, 2, 2, 2, 2, 2, 2, 2, 2}, 3}, // p90 lands in the 2.15s bucket → ceil 3
		{[]float64{3600, 7200}, 60},               // hour-long tail clamps down to 60
	}
	for _, c := range cases {
		s.histWall = metrics.NewLogHistogram(0.001, 3600, 3)
		for _, w := range c.walls {
			s.histWall.Observe(w)
		}
		if got := s.RetryAfterHint(); got != c.want {
			t.Errorf("hint(%v) = %d, want %d", c.walls, got, c.want)
		}
	}
}
