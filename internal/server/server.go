package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"greendimm/internal/core"
	"greendimm/internal/exp"
	"greendimm/internal/metrics"
	"greendimm/internal/obs"
	"greendimm/internal/store"
	"greendimm/internal/sweep"
)

// Submit errors; the HTTP layer maps them onto statuses (429, 503, 400).
var (
	// ErrQueueFull means the bounded queue rejected the job: the client
	// should back off and retry.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining means the server is shutting down and accepts no work.
	ErrDraining = errors.New("server: shutting down")
)

// applyDefaultPolicy fills a vmserver spec's omitted policy with the
// configured default (Config.DefaultPolicy). It runs before
// normalization, so jobs submitted without a policy hash — and journal,
// and cache — as jobs FOR the default policy. The scenario is copied,
// never mutated: the caller's spec stays as written.
func (s *Server) applyDefaultPolicy(spec JobSpec) JobSpec {
	if s.cfg.DefaultPolicy == nil || spec.VMServer == nil || !spec.VMServer.Policy.IsZero() {
		return spec
	}
	sc := *spec.VMServer
	sc.Policy = *s.cfg.DefaultPolicy
	spec.VMServer = &sc
	return spec
}

// InvalidSpecError reports a spec that failed validation.
type InvalidSpecError struct{ Err error }

func (e *InvalidSpecError) Error() string { return "server: invalid job spec: " + e.Err.Error() }
func (e *InvalidSpecError) Unwrap() error { return e.Err }

// JobState is a job's lifecycle state.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled" // client cancel or deadline
)

// terminal reports whether no further transitions can happen.
func (s JobState) terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Config tunes the service. Zero values take defaults.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS). Each worker runs
	// one job at a time on that job's own engines; engines share
	// nothing, so jobs parallelize across cores.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs
	// (default 16). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the result cache (default 128, LRU).
	CacheEntries int
	// DefaultTimeout applies to jobs that don't set timeout_sec
	// (default 15m); MaxTimeout caps every job (default 2h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobRecords bounds the in-memory job table: beyond it, the
	// oldest terminal records are forgotten (default 4096).
	MaxJobRecords int
	// CPUBudget is the total goroutine budget shared by the worker pool
	// and per-job sweep parallelism (default GOMAXPROCS). Each running
	// job always gets its own worker; any CPUBudget - Workers surplus
	// forms a shared slot pool that jobs requesting parallelism > 1
	// borrow extra sweep workers from. With the defaults (Workers ==
	// CPUBudget == GOMAXPROCS) there is no surplus and jobs degrade to
	// serial sweeps — the pool is already using every core.
	CPUBudget int

	// MemoEntries bounds the server-wide baseline-cell memo (default
	// 512 entries, LRU) that lets concurrent or successive jobs share
	// identical sweep cells (e.g. fig12 and fig13's common traced day).
	// Negative disables memoization entirely.
	MemoEntries int

	// Memo, when non-nil, is the shared baseline-cell memo itself —
	// for callers (cmd/greendimmd) that must hand the same instance to
	// both the server and the cluster's warm-placement machinery. Nil
	// lets the server build one from MemoEntries via NewMemo.
	Memo *sweep.Memo

	// Runner is the execution function — a test seam (used by the
	// server's own tests and internal/cluster's fault-injection
	// backends); nil means runSpec (the real simulator). The pool fills
	// every RunHooks field; fake runners may ignore what they don't
	// need.
	Runner func(JobSpec, RunHooks) (*Result, error)

	// TraceCapacity bounds each job's span ring (default
	// obs.DefaultCapacity). Spans beyond it are counted as dropped, not
	// stored.
	TraceCapacity int

	// DefaultPolicy, when non-nil, is the block-selection pipeline
	// applied to vmserver specs that omit their policy field — the
	// operator's `-policy-config` default. It is filled in BEFORE
	// normalization, so the default is part of the job's identity (its
	// spec hash), not a hidden runtime knob: the same spec submitted to
	// daemons with different defaults is different jobs. Specs that name
	// a policy are untouched. Open validates it.
	DefaultPolicy *core.PolicySpec

	// StoreDir, when non-empty, enables the durable job store
	// (internal/store) in that directory: accepted jobs, their completed
	// sweep-cell artifacts and shard ranges are journaled, jobs left
	// non-terminal by a crash are re-enqueued at the next Open, and a
	// resubmitted identical spec resumes from its journaled cells.
	// Empty keeps the server fully in-memory (the previous behavior).
	StoreDir string
}

func (c Config) withDefaults() Config {
	c = c.resolved()
	if c.Runner == nil {
		c.Runner = c.baseRunner()
	}
	return c
}

// resolved fills numeric defaults and materializes the shared memo (with
// the experiment codec installed, so it can export/import entries).
func (c Config) resolved() Config {
	c = c.filled()
	if c.Memo == nil {
		c.Memo = c.NewMemo()
	} else {
		c.Memo.SetCodec(exp.MemoCodec())
	}
	return c
}

// NewMemo builds the baseline-cell memo this config implies: nil when
// MemoEntries is negative (memoization disabled), otherwise an
// LRU-bounded memo with the experiment layer's entry codec installed.
// cmd/greendimmd calls this once and sets Config.Memo so the server,
// the shard runner and the cluster's warm-peer exchange all share one
// instance.
func (c Config) NewMemo() *sweep.Memo {
	c = c.filled()
	if c.MemoEntries <= 0 {
		return nil
	}
	m := sweep.NewMemo(c.MemoEntries)
	m.SetCodec(exp.MemoCodec())
	return m
}

// filled resolves every numeric default, leaving Runner untouched.
func (c Config) filled() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 15 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Hour
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 4096
	}
	if c.CPUBudget <= 0 {
		c.CPUBudget = runtime.GOMAXPROCS(0)
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = obs.DefaultCapacity
	}
	if c.MemoEntries == 0 {
		c.MemoEntries = 512
	}
	return c
}

// baseRunner builds the in-process execution function: runSpec under a
// fresh sweep limiter and the config's shared memo. Call on a resolved
// config.
func (c Config) baseRunner() func(JobSpec, RunHooks) (*Result, error) {
	// Extra sweep workers (beyond each job's own pool worker) draw
	// from the budget left over after the worker pool is staffed.
	limiter := sweep.NewLimiter(c.CPUBudget - c.Workers)
	// One memo across all jobs: distinct specs still share their
	// common baseline cells (result-neutral; see exp.Options.Memo).
	memo := c.Memo
	return func(spec JobSpec, h RunHooks) (*Result, error) {
		return runSpec(spec, h, limiter, memo)
	}
}

// BaseRunner returns the execution function this config would install
// when Runner is nil — for callers (cmd/greendimmd) that compose a
// wrapper, e.g. the cluster's shard runner, around the real simulator
// while keeping the config's limiter/memo sizing. Callers that also
// pass the config to Open should set Config.Memo (NewMemo) first, so
// the wrapper and the server share one memo instead of building two.
func (c Config) BaseRunner() func(JobSpec, RunHooks) (*Result, error) {
	return c.resolved().baseRunner()
}

// job is the internal record; jobView snapshots it for clients.
type job struct {
	id        string
	hash      string
	spec      JobSpec
	state     JobState
	cached    bool
	errMsg    string
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	trace     *obs.Trace // lifecycle spans; never nil for executed jobs

	// Sweep-cell progress, written by the runner's Progress hook while
	// the job executes and read by view/snapshot — atomics, because the
	// readers hold mu but the writer must not.
	cellsDone  atomic.Int64
	cellsTotal atomic.Int64

	// recovered marks a job re-enqueued from the durable store at boot;
	// resumedCells counts journaled artifacts handed to its run as a
	// replay source (atomic: written by runJob outside mu).
	recovered    bool
	resumedCells atomic.Int64

	cancelRequested bool
	cancel          context.CancelFunc // set while running
	done            chan struct{}      // closed on terminal state
}

// ProgressView reports how far a job's sweep has come: cells_done of
// cells_total completed. Jobs without an internal sweep (VM scenarios)
// never report progress.
type ProgressView struct {
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
}

// JobView is the JSON snapshot of a job returned by the API. Progress
// and QueueWaitMS are additive observability fields: like every field
// here other than Spec, they are excluded from the spec hash and so
// never influence caching or cluster merge fingerprints.
type JobView struct {
	ID          string        `json:"id"`
	SpecHash    string        `json:"spec_hash"`
	State       JobState      `json:"state"`
	Cached      bool          `json:"cached,omitempty"`
	Error       string        `json:"error,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Progress    *ProgressView `json:"progress,omitempty"`
	QueueWaitMS float64       `json:"queue_wait_ms,omitempty"`
	// Recovered marks a job the daemon re-enqueued from its durable
	// store after a restart; ResumedCells counts the journaled sweep
	// cells its execution replayed instead of re-simulating.
	Recovered    bool    `json:"recovered,omitempty"`
	ResumedCells int     `json:"resumed_cells,omitempty"`
	Spec         JobSpec `json:"spec"`
	Result       *Result `json:"result,omitempty"`
}

// counters aggregates service activity for /metrics. Guarded by Server.mu.
type counters struct {
	submitted        int64
	succeeded        int64
	failed           int64
	canceled         int64
	rejectedFull     int64
	rejectedInvalid  int64
	rejectedDraining int64
	cacheHits        int64
	cacheMisses      int64
	simSecondsSum    float64 // over succeeded jobs
	recovered        int64   // jobs re-enqueued from the store at boot
	resumedCells     int64   // journaled cells replayed across all runs
}

type cacheEntry struct {
	hash string
	res  *Result
}

// Server is the simulation service: Submit feeds the queue, Workers drain
// it, results land in the LRU cache. All methods are safe for concurrent
// use.
type Server struct {
	cfg Config

	baseCtx   context.Context // parent of every job context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	seq      int64
	jobs     map[string]*job
	order    []string // insertion order, for listing and record pruning
	queue    chan *job
	draining bool
	busy     int // workers currently executing
	ctr      counters
	cache    map[string]*list.Element
	lru      *list.List // front = most recent; values are cacheEntry

	// Latency histograms, lock-free (observed outside mu). Buckets span
	// 1ms..1h, 3 per decade — wide enough for quick CI specs and full
	// paper sweeps alike.
	histWall  *metrics.Histogram // executed jobs' wall time (all outcomes)
	histQueue *metrics.Histogram // queue wait, submit → execution start
	histCell  *metrics.Histogram // individual sweep-cell wall time

	// store is the durable job journal (nil without Config.StoreDir).
	// It has its own lock; journaling failures never fail a job — they
	// only bump storeErrs (the job loses durability, not correctness).
	store     *store.Store
	storeErrs atomic.Int64

	// memoLog is the durable memo journal under <StoreDir>/memo/ (nil
	// without a store or with memoization disabled): every memo entry a
	// run resolves is spilled to it, and Open imports its contents so a
	// restarted daemon boots warm. memoImported counts the entries that
	// survived codec verification at boot; memoPeerFetch counts entries
	// pulled from warm cluster peers (reported via NotePeerMemoFetch).
	memoLog       *store.MemoLog
	memoImported  int64
	memoPeerFetch atomic.Int64

	wg sync.WaitGroup
}

// New starts a server with cfg's worker pool. Call Shutdown to stop it.
// It panics if cfg.StoreDir is set and the store cannot open; servers
// that want the error use Open.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a server with cfg's worker pool. When cfg.StoreDir is
// set, it opens (recovering if needed) the durable job store and
// re-enqueues every job a previous process left non-terminal, marked
// Recovered, before the first worker starts. Call Shutdown to stop.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DefaultPolicy != nil {
		norm, err := cfg.DefaultPolicy.Normalized()
		if err != nil {
			return nil, fmt.Errorf("server: default policy: %w", err)
		}
		cfg.DefaultPolicy = &norm
	}
	var st *store.Store
	var pending []store.Record
	var memoLog *store.MemoLog
	var memoImported int64
	if cfg.StoreDir != "" {
		var err error
		st, err = store.Open(cfg.StoreDir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("server: opening job store: %w", err)
		}
		pending = st.Pending()
		if cfg.Memo != nil {
			// The durable memo lives beside the job journal. Importing
			// before the first worker starts means even the recovered jobs
			// re-enqueued below run against a warm memo; every entry is
			// codec-verified by Import, so a stale or corrupt log degrades
			// to recomputation.
			memoLog, err = store.OpenMemoLog(filepath.Join(cfg.StoreDir, "memo"), store.MemoLogOptions{})
			if err != nil {
				return nil, fmt.Errorf("server: opening memo store: %w", err)
			}
			logged := memoLog.Entries()
			entries := make([]sweep.Entry, len(logged))
			for i, c := range logged {
				entries[i] = sweep.Entry{V: sweep.EntryVersion, Key: c.Key, Value: c.Value}
			}
			memoImported = int64(cfg.Memo.Import(entries))
		}
	}
	// The queue must absorb every recovered job without blocking boot.
	qcap := cfg.QueueDepth
	if len(pending) > qcap {
		qcap = len(pending)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		baseCtx:      ctx,
		cancelAll:    cancel,
		jobs:         make(map[string]*job),
		queue:        make(chan *job, qcap),
		cache:        make(map[string]*list.Element),
		lru:          list.New(),
		histWall:     metrics.NewLogHistogram(0.001, 3600, 3),
		histQueue:    metrics.NewLogHistogram(0.001, 3600, 3),
		histCell:     metrics.NewLogHistogram(0.001, 3600, 3),
		store:        st,
		memoLog:      memoLog,
		memoImported: memoImported,
	}
	for _, rec := range pending {
		s.recoverJob(rec)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// recoverJob re-enqueues one journaled non-terminal record at boot
// (workers are not running yet, so no lock ordering issues). A record
// whose spec no longer validates or hashes differently — schema drift
// across versions — is closed out as failed rather than run wrong.
func (s *Server) recoverJob(rec store.Record) {
	fail := func(msg string) {
		if err := s.store.Finish(rec.Hash, store.StateFailed, msg); err != nil {
			s.storeErrs.Add(1)
		}
	}
	var spec JobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		fail("recovery: unreadable journaled spec: " + err.Error())
		return
	}
	norm, err := spec.normalized()
	if err != nil {
		fail("recovery: journaled spec no longer valid: " + err.Error())
		return
	}
	hash, err := norm.hash()
	if err != nil || hash != rec.Hash {
		fail("recovery: journaled spec no longer hashes to its record")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.seq),
		hash:      hash,
		spec:      norm,
		state:     StateQueued,
		submitted: time.Now(),
		recovered: true,
		trace:     obs.NewTrace(s.cfg.TraceCapacity),
		done:      make(chan struct{}),
	}
	j.trace.Mark("recovered", fmt.Sprintf("journaled_cells=%d", rec.CellCount))
	s.queue <- j // capacity sized for every pending record above
	s.ctr.recovered++
	s.record(j)
}

// Submit validates, cache-checks and enqueues one job. It returns the
// job's snapshot: state "succeeded" with Cached set when the result came
// from the cache, "queued" otherwise. Errors: *InvalidSpecError,
// ErrQueueFull, ErrDraining.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	spec = s.applyDefaultPolicy(spec)
	norm, err := spec.normalized()
	if err == nil {
		_, err = norm.hash()
	}
	if err != nil {
		s.mu.Lock()
		s.ctr.rejectedInvalid++
		s.mu.Unlock()
		return JobView{}, &InvalidSpecError{Err: err}
	}
	hash, _ := norm.hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.ctr.rejectedDraining++
		return JobView{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", s.seq),
		hash:      hash,
		spec:      norm,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if res, ok := s.cacheGet(hash); ok {
		s.ctr.submitted++
		s.ctr.cacheHits++
		j.state = StateSucceeded
		j.cached = true
		j.result = res
		j.started, j.finished = j.submitted, j.submitted
		// Cache hits get a minimal trace: one mark, so the trace endpoint
		// answers for every job id and shows why there is no execute span.
		j.trace = obs.NewTrace(1)
		j.trace.Mark("cache_hit", "")
		close(j.done)
		s.record(j)
		return s.view(j, true), nil
	}
	j.state = StateQueued
	j.trace = obs.NewTrace(s.cfg.TraceCapacity)
	select {
	case s.queue <- j:
	default:
		s.seq-- // the id was never exposed
		s.ctr.rejectedFull++
		return JobView{}, ErrQueueFull
	}
	s.ctr.submitted++
	s.ctr.cacheMisses++
	s.record(j)
	if s.store != nil {
		// Journal the full normalized spec (knobs included) so a crashed
		// daemon re-runs the job exactly as submitted. A re-accepted hash
		// keeps its journaled cells: resubmission resumes.
		if b, err := json.Marshal(norm); err == nil {
			if err := s.store.Accept(hash, b); err != nil {
				s.storeErrs.Add(1)
			}
		}
	}
	return s.view(j, false), nil
}

// record indexes a job and prunes the oldest terminal records beyond the
// table bound. Caller holds mu.
func (s *Server) record(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.MaxJobRecords {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobRecords
	for _, id := range s.order {
		if excess > 0 {
			if old, ok := s.jobs[id]; ok && old.state.terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// worker executes queued jobs until the queue closes (Shutdown) — which
// drains every queued job before the worker exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job under its deadline context.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutSec > 0 {
		timeout = time.Duration(j.spec.TimeoutSec * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	s.busy++
	runner := s.cfg.Runner
	spec := j.spec
	s.mu.Unlock()

	// Queue wait is an after-the-fact span: the interval from submission
	// to this worker picking the job up.
	qw := j.started.Sub(j.submitted)
	j.trace.Add("queue_wait", "", j.submitted, qw, nil)
	s.histQueue.Observe(qw.Seconds())

	// The stop predicate is the cancel check the engines' event loops
	// poll: deadline, client cancel and shutdown-force all flow through
	// this one context. Trace and Progress write through lock-free /
	// atomic paths, so the running job never touches s.mu.
	h := RunHooks{
		Stop:  func() bool { return ctx.Err() != nil },
		Trace: j.trace,
		Progress: func(done, total int, cellSeconds float64) {
			j.cellsDone.Store(int64(done))
			j.cellsTotal.Store(int64(total))
			s.histCell.Observe(cellSeconds)
		},
	}
	if s.store != nil {
		// Resume state: journaled cells replay instead of re-simulating
		// (verified byte-exact in exp), completed ranges steer the shard
		// planner past finished work, and fresh cells/ranges journal as
		// they land. The store serializes its own writes; CellObserved
		// arrives from concurrent sweep cells.
		hash := j.hash
		cells, doneRanges := s.store.Resume(hash)
		if len(cells) > 0 {
			arts := make([]exp.CellArtifact, len(cells))
			for i, c := range cells {
				arts[i] = exp.CellArtifact{Key: c.Key, Value: c.Value}
			}
			h.Cells = exp.NewCellSet(arts)
			j.resumedCells.Store(int64(len(cells)))
		}
		h.CellObserved = func(a exp.CellArtifact) {
			if err := s.store.PutCell(hash, a.Key, a.Value); err != nil {
				s.storeErrs.Add(1)
			}
			if s.memoLog != nil {
				// Spill the entry to the durable memo too: unlike the
				// per-spec job journal, the memo log is keyed only by
				// fingerprint, so a restarted daemon is warm for ANY spec
				// that shares the cell, not just this one.
				if err := s.memoLog.Put(a.Key, a.Value); err != nil {
					s.storeErrs.Add(1)
				}
			}
		}
		h.Ranges = &RangeLog{
			Done: doneRanges,
			OnPlan: func(total int, ranges [][2]int) {
				if err := s.store.Plan(hash, total, ranges); err != nil {
					s.storeErrs.Add(1)
				}
			},
			OnDone: func(lo, hi int) {
				if err := s.store.RangeDone(hash, lo, hi); err != nil {
					s.storeErrs.Add(1)
				}
			},
		}
	}
	sp := j.trace.Start("execute")
	res, err := runner(spec, h)
	sp.EndErr(err)
	wall := time.Since(j.started).Seconds()
	s.histWall.Observe(wall)
	ctxErr := ctx.Err()
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.busy--
	j.cancel = nil
	j.finished = time.Now()
	switch {
	case ctxErr != nil || j.cancelRequested:
		// The run may have been truncated mid-simulation; its partial
		// result is meaningless, so it is dropped even if the runner
		// reported success. (Its completed cells are journaled and will
		// be resumed — the artifacts are individually complete even when
		// the run is not.)
		j.state = StateCanceled
		switch {
		case errors.Is(ctxErr, context.DeadlineExceeded):
			j.errMsg = fmt.Sprintf("deadline exceeded after %s", timeout)
		case err != nil && !errors.Is(err, context.Canceled):
			j.errMsg = fmt.Sprintf("canceled: %v", err)
		default:
			j.errMsg = "canceled"
		}
		s.ctr.canceled++
		// Only a deliberate cancel — client request or the job's own
		// deadline — closes the journal record. A forced shutdown
		// (base context canceled with no cancel request) leaves it
		// non-terminal on purpose: that is the crash marker boot
		// recovery looks for.
		if j.cancelRequested || errors.Is(ctxErr, context.DeadlineExceeded) {
			s.storeFinish(j.hash, store.StateCanceled, j.errMsg)
		}
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.ctr.failed++
		s.storeFinish(j.hash, store.StateFailed, j.errMsg)
	default:
		res.WallSeconds = wall
		j.state = StateSucceeded
		j.result = res
		s.ctr.succeeded++
		s.ctr.simSecondsSum += res.SimSeconds
		s.ctr.resumedCells += j.resumedCells.Load()
		s.cachePut(j.hash, res)
		s.storeFinish(j.hash, store.StateMerged, "")
	}
	close(j.done)
}

// storeFinish journals a terminal state, if a store is attached. Caller
// may hold mu; the store has its own lock and never calls back.
func (s *Server) storeFinish(hash string, st store.State, errMsg string) {
	if s.store == nil {
		return
	}
	if err := s.store.Finish(hash, st, errMsg); err != nil {
		s.storeErrs.Add(1)
	}
}

// cacheGet looks up and refreshes a cached result. Caller holds mu.
func (s *Server) cacheGet(hash string) (*Result, bool) {
	el, ok := s.cache[hash]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(cacheEntry).res, true
}

// cachePut stores a result, evicting the least-recently-used entry past
// capacity. Caller holds mu.
func (s *Server) cachePut(hash string, res *Result) {
	if el, ok := s.cache[hash]; ok {
		s.lru.MoveToFront(el)
		el.Value = cacheEntry{hash: hash, res: res}
		return
	}
	s.cache[hash] = s.lru.PushFront(cacheEntry{hash: hash, res: res})
	for s.lru.Len() > s.cfg.CacheEntries {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.cache, oldest.Value.(cacheEntry).hash)
	}
}

// view snapshots a job. Caller holds mu.
func (s *Server) view(j *job, includeResult bool) JobView {
	v := JobView{
		ID:          j.id,
		SpecHash:    j.hash,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		Spec:        j.spec,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if total := j.cellsTotal.Load(); total > 0 {
		v.Progress = &ProgressView{
			CellsDone:  int(j.cellsDone.Load()),
			CellsTotal: int(total),
		}
	}
	if !j.started.IsZero() && !j.cached {
		v.QueueWaitMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	v.Recovered = j.recovered
	v.ResumedCells = int(j.resumedCells.Load())
	if includeResult && j.state == StateSucceeded {
		v.Result = j.result
	}
	return v
}

// Get returns a job's snapshot, including its result once succeeded.
func (s *Server) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.view(j, true), true
}

// ListQuery filters and paginates List. The zero query selects every
// retained job.
type ListQuery struct {
	// Status, when non-empty, keeps only jobs in that state.
	Status JobState
	// Recovered keeps only jobs the daemon re-enqueued from its durable
	// store at boot (any state). Composes with Status.
	Recovered bool
	// Limit bounds the page size (0 = no bound); Offset skips that many
	// matching jobs first. Both apply after the Status filter, over the
	// deterministic submission order.
	Limit  int
	Offset int
}

// List returns retained jobs in submission order, without results,
// after applying q's filter and pagination. The second return is the
// total number of jobs matching the filter before pagination, so
// clients can page without racing a moving tail.
func (s *Server) List(q ListQuery) ([]JobView, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	matched := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || (q.Status != "" && j.state != q.Status) || (q.Recovered && !j.recovered) {
			continue
		}
		matched = append(matched, j)
	}
	total := len(matched)
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			matched = nil
		} else {
			matched = matched[q.Offset:]
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	out := make([]JobView, 0, len(matched))
	for _, j := range matched {
		out = append(out, s.view(j, false))
	}
	return out, total
}

// Trace returns a job's trace snapshot — safe while the job is still
// running (only fully-published spans appear) — and whether the id
// exists.
func (s *Server) Trace(id string) (obs.TraceView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return obs.TraceView{}, false
	}
	return j.trace.View(), true
}

// Cancel cancels a queued or running job. It reports the job's snapshot
// after the request and whether the id exists. Cancelling a terminal job
// is a no-op.
func (s *Server) Cancel(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.state = StateCanceled
		j.errMsg = "canceled before start"
		j.finished = time.Now()
		s.ctr.canceled++
		s.storeFinish(j.hash, store.StateCanceled, j.errMsg)
		close(j.done)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel() // the engine's stop check fires within its stride
		}
	}
	return s.view(j, true), true
}

// Wait blocks until the job reaches a terminal state or ctx is done, then
// returns the snapshot.
func (s *Server) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
	v, _ := s.Get(id)
	return v, nil
}

// RetryAfterHint suggests, in whole seconds, how long a client rejected
// with ErrQueueFull should wait before resubmitting: the p90 of
// executed-job wall time (a queue slot frees roughly once per job, and
// the tail — not the mean — is what keeps slots occupied), clamped to
// [1, 60]. Before any job has executed it returns 1.
func (s *Server) RetryAfterHint() int {
	hint := int(math.Ceil(s.histWall.Quantile(0.9)))
	if hint < 1 {
		hint = 1
	}
	if hint > 60 {
		hint = 60
	}
	return hint
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops accepting jobs and drains the pool: queued and running
// jobs finish normally. If ctx expires first, every remaining job context
// is canceled (the engines abort at their next stop-check poll) and
// Shutdown waits for the workers to exit, returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: Shutdown called twice")
	}
	s.draining = true
	close(s.queue) // Submit rejects before sending once draining is set
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		// Jobs the forced stop interrupted were deliberately NOT marked
		// terminal in the store: closing it now leaves them journaled as
		// accepted, so the next Open re-enqueues them — the in-process
		// equivalent of a crash, which the recovery tests exploit.
		s.closeStore()
		return ctx.Err()
	}
}

// closeStore releases the job store and memo log after the workers have
// exited.
func (s *Server) closeStore() {
	if s.memoLog != nil {
		if err := s.memoLog.Close(); err != nil {
			s.storeErrs.Add(1)
		}
	}
	if s.store == nil {
		return
	}
	if err := s.store.Close(); err != nil {
		s.storeErrs.Add(1)
	}
}

// Memo returns the server's shared baseline-cell memo (nil when
// memoization is disabled) — the instance the memo-exchange endpoints
// serve and the cluster's warm machinery scores against.
func (s *Server) Memo() *sweep.Memo { return s.cfg.Memo }

// MemoImported reports how many durable memo entries the boot import
// installed — the warm-restart tests' zero-recompute witness.
func (s *Server) MemoImported() int64 { return s.memoImported }

// NotePeerMemoFetch records n memo entries pulled from warm cluster
// peers, for /metrics. The cluster layer calls it (via the wiring in
// cmd/greendimmd) because the fetch happens outside the server.
func (s *Server) NotePeerMemoFetch(n int64) { s.memoPeerFetch.Add(n) }

// stats is one consistent snapshot for /metrics.
type stats struct {
	counters
	queueDepth  int
	queueCap    int
	workers     int
	busyWorkers int
	cacheSize   int
	byState     map[JobState]int
	draining    bool
	// In-flight sweep progress summed over running jobs, so Prometheus
	// can plot a fleet's completion fraction without polling each job.
	cellsDoneRunning  int64
	cellsTotalRunning int64
	// Durable-store accounting (store nil when disabled).
	store     *store.Stats
	storeErrs int64
	// Baseline-cell memo accounting (memo nil when disabled).
	memoEntries   int
	memoHits      int64
	memoComputes  int64
	memoEvictions int64
	memoImports   int64
	memoPeerFetch int64
	hasMemo       bool
	memoLog       *store.MemoLogStats
}

func (s *Server) snapshot() stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := stats{
		counters:    s.ctr,
		queueDepth:  len(s.queue),
		queueCap:    s.cfg.QueueDepth,
		workers:     s.cfg.Workers,
		busyWorkers: s.busy,
		cacheSize:   len(s.cache),
		draining:    s.draining,
		byState: map[JobState]int{
			StateQueued: 0, StateRunning: 0, StateSucceeded: 0, StateFailed: 0, StateCanceled: 0,
		},
	}
	for _, j := range s.jobs {
		st.byState[j.state]++
		if j.state == StateRunning {
			st.cellsDoneRunning += j.cellsDone.Load()
			st.cellsTotalRunning += j.cellsTotal.Load()
		}
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.store = &ss
	}
	st.storeErrs = s.storeErrs.Load()
	if m := s.cfg.Memo; m != nil {
		st.hasMemo = true
		st.memoEntries = m.Len()
		st.memoHits = m.Hits()
		st.memoComputes = m.Computes()
		st.memoEvictions = m.Evictions()
		st.memoImports = m.Imports()
	}
	st.memoPeerFetch = s.memoPeerFetch.Load()
	if s.memoLog != nil {
		ls := s.memoLog.Stats()
		st.memoLog = &ls
	}
	return st
}
