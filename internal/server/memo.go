package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"greendimm/internal/exp"
	"greendimm/internal/sweep"
)

// This file is the memo-exchange surface: the two endpoints a warm peer
// serves (its key digest and batched entry fetch) and the key prediction
// the cluster's warm-aware placement scores against. Exchange is safe by
// construction — entries are codec-verified on import and every cell is
// a pure function of its key — so the worst a stale or mismatched peer
// can cause is a recompute.

// MemoKeysView is the GET /v1/memo/keys response: the daemon's warm-key
// digest — every settled, exportable memo entry's key, sorted.
type MemoKeysView struct {
	Count int      `json:"count"`
	Keys  []string `json:"keys"`
}

// MemoFetchRequest is the POST /v1/memo/entries request body.
type MemoFetchRequest struct {
	Keys []string `json:"keys"`
}

// MemoFetchResponse is the POST /v1/memo/entries response: the requested
// entries that were resident and exportable. Absent keys are silently
// omitted — the caller computes them.
type MemoFetchResponse struct {
	Entries []sweep.Entry `json:"entries"`
}

// MaxMemoFetchKeys bounds one fetch request. Cluster prefetches batch
// under this bound; a request beyond it is rejected as invalid.
const MaxMemoFetchKeys = 4096

// handleMemoKeys serves GET /v1/memo/keys. A daemon without a memo
// answers an empty digest, not an error: to the exchange protocol it is
// simply a peer with nothing warm.
func (s *Server) handleMemoKeys(w http.ResponseWriter, r *http.Request) {
	keys := s.cfg.Memo.Keys() // nil-safe
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, MemoKeysView{Count: len(keys), Keys: keys})
}

// handleMemoFetch serves POST /v1/memo/entries.
func (s *Server) handleMemoFetch(w http.ResponseWriter, r *http.Request) {
	var req MemoFetchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "decoding memo fetch request: "+err.Error(), 0)
		return
	}
	if len(req.Keys) > MaxMemoFetchKeys {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec,
			fmt.Sprintf("fetch of %d keys exceeds the %d-key bound", len(req.Keys), MaxMemoFetchKeys), 0)
		return
	}
	entries := s.cfg.Memo.Export(req.Keys) // nil-safe
	if entries == nil {
		entries = []sweep.Entry{}
	}
	writeJSON(w, http.StatusOK, MemoFetchResponse{Entries: entries})
}

// PredictMemoKeys reports which memo keys the spec's execution would
// consult, without simulating (exp.PredictKeys). Non-experiment and
// non-shardable specs predict nothing — nil, nil — as does a spec whose
// cell range is empty after normalization. The prediction is a
// best-effort placement heuristic: a missed key costs the target peer a
// recompute, never a wrong byte, so callers treat errors as "no
// prediction" too.
func PredictMemoKeys(spec JobSpec) ([]string, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	if norm.Kind != KindExperiment || !exp.Shardable(norm.Experiment.ID) {
		return nil, nil
	}
	o := exp.Options{Quick: norm.Experiment.Quick, Seed: norm.Experiment.Seed}
	lo, hi := 0, 0
	if c := norm.Cells; c != nil {
		lo, hi = c.Lo, c.Hi
	} else {
		total, err := exp.CellCount(norm.Experiment.ID, o)
		if err != nil {
			return nil, err
		}
		hi = total
	}
	if hi <= lo {
		return nil, nil
	}
	return exp.PredictKeys(norm.Experiment.ID, o, lo, hi)
}
