package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fig8Slow is the interruptible workload: non-quick fig8 runs 12 cells
// at tens of milliseconds each, so a poller can reliably catch it
// mid-sweep before forcing a stop.
func fig8Slow() JobSpec {
	return JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Seed: 1}}
}

// submitAndInterrupt submits spec and polls until at least minCells
// sweep cells have completed, failing the test if the job reaches a
// terminal state first.
func submitAndInterrupt(t *testing.T, s *Server, spec JobSpec, minCells int) JobView {
	t.Helper()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		got, ok := s.Get(v.ID)
		if !ok {
			t.Fatalf("job %s vanished", v.ID)
		}
		if got.State.terminal() {
			t.Fatalf("job finished (%s) before %d cells were observed — workload too fast to interrupt", got.State, minCells)
		}
		if got.Progress != nil && got.Progress.CellsDone >= minCells {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("job never reported sweep progress")
	return JobView{}
}

// TestCrashRecoveryResumesFromJournaledCells is the crash e2e the store
// exists for: a multi-cell job is interrupted mid-sweep by a forced
// shutdown (the in-process stand-in for kill -9 — the job is NOT marked
// terminal in the journal), a second server opens the same store,
// re-enqueues the job, resumes from the journaled cells, and produces
// the byte-identical report of an uninterrupted run.
func TestCrashRecoveryResumesFromJournaledCells(t *testing.T) {
	want, err := Execute(fig8Slow(), RunHooks{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 4, StoreDir: dir}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := submitAndInterrupt(t, s1, fig8Slow(), 2)
	// Forced shutdown: the drain context is already dead, so every job
	// context is canceled immediately and the store record stays open.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Shutdown(dead); err != context.Canceled {
		t.Fatalf("forced shutdown: %v", err)
	}
	if v, _ := s1.Get(mid.ID); v.State != StateCanceled {
		t.Fatalf("interrupted job state = %s, want canceled", v.State)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	recovered, total := s2.List(ListQuery{Recovered: true})
	if total != 1 || len(recovered) != 1 {
		t.Fatalf("recovered jobs = %d, want 1", total)
	}
	rv := recovered[0]
	if !rv.Recovered {
		t.Fatal("recovered job not flagged Recovered")
	}
	final := waitState(t, s2, rv.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recovered job = %s (%s), want succeeded", final.State, final.Error)
	}
	if final.ResumedCells < 2 {
		t.Fatalf("resumed_cells = %d, want >= 2 (journaled progress was %d)", final.ResumedCells, mid.Progress.CellsDone)
	}
	if final.Result == nil || final.Result.Text != want.Text {
		t.Fatal("recovered report is not byte-identical to the uninterrupted run")
	}

	// The recovery counters surface on /metrics.
	rr := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, line := range []string{
		"greendimm_jobs_recovered_total 1",
		"greendimm_store_specs 1",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	if !strings.Contains(body, "greendimm_cells_resumed_total") {
		t.Error("metrics missing greendimm_cells_resumed_total")
	}

	// The recovered-job filter is reachable over HTTP too.
	rr = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs?status=recovered", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"recovered": true`) {
		t.Errorf("GET /v1/jobs?status=recovered = %d: %s", rr.Code, rr.Body.String())
	}
}

// TestCancelThenResubmitResumes covers the deliberate-interruption
// sibling of crash recovery: a client cancel closes the journal record
// (no re-enqueue at boot) but keeps its cells, so resubmitting the
// identical spec resumes from them instead of starting cold.
func TestCancelThenResubmitResumes(t *testing.T) {
	want, err := Execute(fig8Slow(), RunHooks{})
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Workers: 1, QueueDepth: 4, StoreDir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	mid := submitAndInterrupt(t, s, fig8Slow(), 2)
	if _, ok := s.Cancel(mid.ID); !ok {
		t.Fatal("cancel: unknown job")
	}
	if v := waitState(t, s, mid.ID); v.State != StateCanceled {
		t.Fatalf("canceled job = %s", v.State)
	}

	v2, err := s.Submit(fig8Slow())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if v2.Cached {
		t.Fatal("canceled job left a cached result")
	}
	final := waitState(t, s, v2.ID)
	if final.State != StateSucceeded {
		t.Fatalf("resubmitted job = %s (%s)", final.State, final.Error)
	}
	if final.ResumedCells < 2 {
		t.Fatalf("resubmission resumed %d cells, want >= 2", final.ResumedCells)
	}
	if final.Recovered {
		t.Fatal("a live resubmission must not be flagged Recovered")
	}
	if final.Result == nil || final.Result.Text != want.Text {
		t.Fatal("resumed report diverged from the cold run")
	}
}
