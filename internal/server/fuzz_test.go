package server

import (
	"encoding/json"
	"testing"

	"greendimm/internal/core"
	"greendimm/internal/exp"
)

// FuzzJobSpecHash probes the content-address contract the cluster layer
// leans on: for any spec that normalizes, (1) normalization is
// idempotent, (2) the hash of the normalized form equals the hash of the
// original, (3) the execution knobs — Parallelism, EngineShards and
// TimeoutSec — never change the hash, since specs differing only there
// must share a cache entry, and (4) for legacy-named policies the bare
// string and equivalent structured policy object hash identically.
func FuzzJobSpecHash(f *testing.F) {
	f.Add("experiment", "fig12", true, int64(7), false, false, 2.5, int64(3), 0.0, 4, 2, 12.0, "", "", "", 0.0)
	f.Add("vmserver", "", false, int64(0), true, true, 0.25, int64(1), 0.5, 0, 0, 0.0, "removable-first", "", "", 0.0)
	f.Add("experiment", "hwcost", false, int64(0), false, true, 1.0, int64(9), 0.0, 64, 16, 0.0, "", "", "", 0.0)
	f.Add("vmserver", "tab2", true, int64(-4), false, false, 0.0, int64(0), 1.5, 1, 4, 3600.0, "random", "idle-age", "", 0.0)
	f.Add("bogus", "fig1", false, int64(2), true, false, 24.0, int64(5), 0.0, 7, -1, 1.0, "", "", "", 0.0)
	f.Add("vmserver", "", false, int64(0), true, true, 0.25, int64(1), 0.0, 0, 0, 0.0, "age-threshold", "idle-age", "min_idle_s", 3.0)
	f.Add("vmserver", "", false, int64(0), false, true, 0.1, int64(2), 0.0, 0, 0, 0.0, "heat-tier", "access-count", "halflife_s", 20.0)
	f.Add("vmserver", "", false, int64(0), false, true, 0.1, int64(2), 0.0, 0, 0, 0.0, "hysteresis", "", "hold_s", -5.0)
	f.Add("vmserver", "", false, int64(0), false, true, 0.1, int64(2), 0.0, 0, 0, 0.0, "free-first", "idle-age", "", 0.0)

	f.Fuzz(func(t *testing.T, kind, expID string, quick bool, expSeed int64,
		ksm, greendimm bool, hours float64, vmSeed int64, volatility float64,
		parallelism, engineShards int, timeoutSec float64,
		polName, polTracker, polParam string, polValue float64) {
		spec := JobSpec{Kind: kind, Parallelism: parallelism,
			EngineShards: engineShards, TimeoutSec: timeoutSec}
		switch kind {
		case KindExperiment:
			spec.Experiment = &ExperimentSpec{ID: expID, Quick: quick, Seed: expSeed}
		case KindVMServer:
			policy := core.PolicySpec{Name: polName, Tracker: polTracker}
			if polParam != "" {
				policy.Params = map[string]float64{polParam: polValue}
			}
			spec.VMServer = &exp.VMScenario{KSM: ksm, GreenDIMM: greendimm,
				Hours: hours, Seed: vmSeed, PageVolatility: volatility,
				Policy: policy}
		}

		norm, err := spec.Normalize()
		if err != nil {
			// Invalid specs must be rejected consistently by the hash too.
			if _, herr := SpecHash(spec); herr == nil {
				t.Fatalf("Normalize rejected %+v (%v) but SpecHash accepted it", spec, err)
			}
			return
		}

		again, err := norm.Normalize()
		if err != nil {
			t.Fatalf("normalization not idempotent: re-normalizing %+v failed: %v", norm, err)
		}
		h1, err := SpecHash(spec)
		if err != nil {
			t.Fatalf("SpecHash(original) after successful Normalize: %v", err)
		}
		h2, err := SpecHash(norm)
		if err != nil {
			t.Fatalf("SpecHash(normalized): %v", err)
		}
		h3, err := SpecHash(again)
		if err != nil {
			t.Fatalf("SpecHash(re-normalized): %v", err)
		}
		if h1 != h2 || h2 != h3 {
			t.Fatalf("hash not stable under normalization: %s / %s / %s", h1, h2, h3)
		}

		// Execution knobs must never shift the content address.
		knobbed := spec
		knobbed.Parallelism = (parallelism + 1) % (MaxJobParallelism + 1)
		knobbed.EngineShards = (engineShards + 1) % (MaxEngineShards + 1)
		knobbed.TimeoutSec = timeoutSec + 17
		h4, err := SpecHash(knobbed)
		if err != nil {
			t.Fatalf("SpecHash with changed execution knobs: %v", err)
		}
		if h4 != h1 {
			t.Fatalf("execution knobs changed the hash: %s -> %s", h1, h4)
		}

		// The policy field must round-trip through its JSON wire form
		// without moving the hash: re-parsing the normalized spec's JSON
		// (bare string for legacy policies, object otherwise) is the same
		// job.
		if spec.VMServer != nil {
			wire, err := json.Marshal(norm)
			if err != nil {
				t.Fatalf("marshal normalized spec: %v", err)
			}
			var reparsed JobSpec
			if err := json.Unmarshal(wire, &reparsed); err != nil {
				t.Fatalf("re-parse normalized spec %s: %v", wire, err)
			}
			h5, err := SpecHash(reparsed)
			if err != nil {
				t.Fatalf("SpecHash(re-parsed): %v", err)
			}
			if h5 != h1 {
				t.Fatalf("JSON round trip changed the hash: %s -> %s (wire %s)", h1, h5, wire)
			}
		}
	})
}
