package server

import (
	"strings"
	"testing"

	"greendimm/internal/core"
	"greendimm/internal/exp"
)

func mustHash(t *testing.T, spec JobSpec) string {
	t.Helper()
	norm, err := spec.normalized()
	if err != nil {
		t.Fatalf("normalize %+v: %v", spec, err)
	}
	h, err := norm.hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSpecHashCanonicalization(t *testing.T) {
	// Omitted defaults and explicitly spelled defaults are the same job.
	implicit := JobSpec{Kind: KindVMServer, VMServer: &exp.VMScenario{GreenDIMM: true}}
	explicit := JobSpec{Kind: KindVMServer, VMServer: &exp.VMScenario{
		GreenDIMM: true, CapacityGB: 256, Hours: 24, BlockMB: 1024,
		PeriodMS: 1000, MaxOfflinePerTick: 8,
		Policy: core.PolicySpec{Name: core.PolicyFreeFirst},
	}}
	if mustHash(t, implicit) != mustHash(t, explicit) {
		t.Error("defaulted and explicit specs hash differently")
	}
	// The execution timeout is not part of the simulated world.
	timed := implicit
	timed.TimeoutSec = 30
	if mustHash(t, implicit) != mustHash(t, timed) {
		t.Error("timeout_sec changed the cache key")
	}
	// Neither is the sweep parallelism: results are byte-identical at
	// every fan-out, so specs differing only here share a cache entry.
	par := implicit
	par.Parallelism = 8
	if mustHash(t, implicit) != mustHash(t, par) {
		t.Error("parallelism changed the cache key")
	}
	// Nor the engine shard count, for the same reason.
	sharded := implicit
	sharded.EngineShards = 4
	if mustHash(t, implicit) != mustHash(t, sharded) {
		t.Error("engine_shards changed the cache key")
	}
	// Anything that changes the simulation changes the key.
	other := JobSpec{Kind: KindVMServer, VMServer: &exp.VMScenario{GreenDIMM: true, Seed: 7}}
	if mustHash(t, implicit) == mustHash(t, other) {
		t.Error("different seeds hash identically")
	}
}

func TestSpecExperimentDefaultsAndValidation(t *testing.T) {
	h1 := mustHash(t, JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost"}})
	h2 := mustHash(t, JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost", Seed: 1}})
	if h1 != h2 {
		t.Error("seed 0 should normalize to the CLI default seed 1")
	}

	bad := []JobSpec{
		{},
		{Kind: "nope"},
		{Kind: KindExperiment},
		{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig99"}},
		{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig1"}, VMServer: &exp.VMScenario{}},
		{Kind: KindVMServer},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{Hours: -1}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{CapacityGB: 100}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{BlockMB: 999}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{Policy: core.PolicySpec{Name: "bogus"}}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{Policy: core.PolicySpec{
			Name: core.PolicyAgeThreshold, Params: map[string]float64{"nope": 1},
		}}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{Policy: core.PolicySpec{
			Name: core.PolicyHeatTier, Params: map[string]float64{"tiers": 1000},
		}}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{Policy: core.PolicySpec{
			Name: core.PolicyFreeFirst, Tracker: core.TrackerIdleAge,
		}}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{OffThr: 0.04}},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{}, TimeoutSec: -1},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{}, Parallelism: -1},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{}, Parallelism: MaxJobParallelism + 1},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{}, EngineShards: -1},
		{Kind: KindVMServer, VMServer: &exp.VMScenario{}, EngineShards: MaxEngineShards + 1},
	}
	for _, spec := range bad {
		if _, err := spec.normalized(); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
	}
}

func TestSpecHashIsHex(t *testing.T) {
	h := mustHash(t, JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig1", Quick: true}})
	if len(h) != 64 || strings.Trim(h, "0123456789abcdef") != "" {
		t.Errorf("hash %q is not 64 hex chars", h)
	}
}
