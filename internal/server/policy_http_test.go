package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"greendimm/internal/core"
	"greendimm/internal/exp"
)

// TestHTTPPoliciesEndpoint exercises GET /v1/policies end to end: the
// schema listing must cover every registered policy and tracker with
// parameter ranges, and the default must reflect the daemon's
// configuration in policy wire form.
func TestHTTPPoliciesEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1,
		Runner: func(JobSpec, RunHooks) (*Result, error) { return &Result{}, nil }})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/policies = %d, want 200", resp.StatusCode)
	}
	var v PoliciesView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Default.Name != core.PolicyFreeFirst {
		t.Errorf("default policy = %+v, want free-first", v.Default)
	}
	if len(v.Policies) != 7 {
		t.Errorf("listed %d policies, want all 7", len(v.Policies))
	}
	if len(v.Trackers) != 2 {
		t.Errorf("listed %d trackers, want both", len(v.Trackers))
	}
	byName := map[string]core.PolicyInfo{}
	for _, p := range v.Policies {
		byName[p.Name] = p
	}
	at, ok := byName[core.PolicyAgeThreshold]
	if !ok || at.DefaultTracker != core.TrackerIdleAge || len(at.Params) == 0 {
		t.Errorf("age-threshold schema incomplete: %+v", at)
	}
	if len(at.Params) > 0 && (at.Params[0].Name != "min_idle_s" || at.Params[0].Default != 5) {
		t.Errorf("age-threshold param schema = %+v", at.Params)
	}
}

// TestHTTPConfiguredDefaultPolicy proves the -policy-config default is
// part of a job's identity: a vmserver spec that omits its policy runs
// (and hashes) as the configured pipeline, a spec naming a policy is
// untouched, and /v1/policies reports the configured default.
func TestHTTPConfiguredDefaultPolicy(t *testing.T) {
	var got []core.PolicySpec
	def := core.PolicySpec{Name: core.PolicyAgeThreshold, Params: map[string]float64{"min_idle_s": 3}}
	s := New(Config{Workers: 1, QueueDepth: 8, DefaultPolicy: &def,
		Runner: func(spec JobSpec, _ RunHooks) (*Result, error) {
			got = append(got, spec.VMServer.Policy)
			return &Result{}, nil
		}})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The daemon reports its configured default, normalized.
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	var pv PoliciesView
	if err := json.NewDecoder(resp.Body).Decode(&pv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pv.Default.Name != core.PolicyAgeThreshold || pv.Default.Tracker != core.TrackerIdleAge ||
		pv.Default.Params["min_idle_s"] != 3 {
		t.Errorf("reported default = %+v, want normalized age-threshold", pv.Default)
	}

	submit := func(body string) JobView {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1 := submit(`{"kind":"vmserver","vmserver":{"greendimm":true,"hours":0.01}}`)
	v2 := submit(`{"kind":"vmserver","vmserver":{"greendimm":true,"hours":0.01,"policy":"removable-first"}}`)
	getJob(t, ts, v1.ID, "?wait=30s")
	getJob(t, ts, v2.ID, "?wait=30s")
	if len(got) != 2 {
		t.Fatalf("runner saw %d jobs, want 2", len(got))
	}
	if got[0].Name != core.PolicyAgeThreshold || got[0].Params["min_idle_s"] != 3 {
		t.Errorf("omitted policy ran as %+v, want the configured default", got[0])
	}
	if got[1].Name != core.PolicyRemovableFirst {
		t.Errorf("explicit policy overridden: ran as %+v", got[1])
	}

	// The filled default is part of the hash: a bare spec must hash as
	// the default-policy job, not as free-first — and the caller's spec
	// must not be mutated in the process.
	bare := JobSpec{Kind: KindVMServer, VMServer: &exp.VMScenario{GreenDIMM: true, Hours: 0.01}}
	filled := s.applyDefaultPolicy(bare)
	if !bare.VMServer.Policy.IsZero() {
		t.Error("applyDefaultPolicy mutated the caller's scenario")
	}
	hFilled, err := SpecHash(filled)
	if err != nil {
		t.Fatal(err)
	}
	hExplicit, err := SpecHash(JobSpec{Kind: KindVMServer,
		VMServer: &exp.VMScenario{GreenDIMM: true, Hours: 0.01, Policy: def}})
	if err != nil {
		t.Fatal(err)
	}
	hBare, err := SpecHash(bare)
	if err != nil {
		t.Fatal(err)
	}
	if hFilled != hExplicit {
		t.Errorf("default-filled spec hashes apart from the explicit one: %s vs %s", hFilled, hExplicit)
	}
	if hFilled == hBare {
		t.Error("configured default did not enter the job identity (hash equals the free-first job)")
	}
}

// TestHTTPInvalidPolicy400 holds the validation satellite to its
// contract end to end: a structurally valid spec with bad policy params
// must come back as a machine-coded 400 at submit time — the error
// surfaces before any simulation runs, not deep inside one.
func TestHTTPInvalidPolicy400(t *testing.T) {
	ran := 0
	s := New(Config{Workers: 1, QueueDepth: 4,
		Runner: func(JobSpec, RunHooks) (*Result, error) { ran++; return &Result{}, nil }})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"kind":"vmserver","vmserver":{"greendimm":true,"policy":"bogus"}}`,
		`{"kind":"vmserver","vmserver":{"greendimm":true,"policy":{"name":"age-threshold","params":{"nope":1}}}}`,
		`{"kind":"vmserver","vmserver":{"greendimm":true,"policy":{"name":"heat-tier","params":{"tiers":1000}}}}`,
		`{"kind":"vmserver","vmserver":{"greendimm":true,"policy":{"name":"free-first","tracker":"idle-age"}}}`,
		`{"kind":"vmserver","vmserver":{"greendimm":true,"policy":{"name":"random","oops":true}}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("body %s: decoding error envelope: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s → %d, want 400", body, resp.StatusCode)
		}
		if env.Error.Code != CodeInvalidSpec {
			t.Errorf("body %s → code %q, want %q", body, env.Error.Code, CodeInvalidSpec)
		}
		if env.Error.Message == "" {
			t.Errorf("body %s → empty error message", body)
		}
	}
	if ran != 0 {
		t.Errorf("invalid specs reached the runner %d times", ran)
	}
}

// TestParsePolicyConfig covers the -policy-config file format: both
// policy wire forms, scenario embedding, and rejection of unknown
// fields, bad params and a policy hidden inside the scenario.
func TestParsePolicyConfig(t *testing.T) {
	pc, err := ParsePolicyConfig([]byte(`{"policy":{"name":"hysteresis","params":{"hold_s":30}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if pc.Policy.Name != core.PolicyHysteresis || pc.Policy.Params["hold_s"] != 30 ||
		pc.Policy.Tracker != core.TrackerIdleAge {
		t.Errorf("parsed policy = %+v, want normalized hysteresis", pc.Policy)
	}
	// The bare legacy string parses too, and the empty config is the
	// paper default.
	if pc, err = ParsePolicyConfig([]byte(`{"policy":"random"}`)); err != nil || pc.Policy.Name != core.PolicyRandom {
		t.Errorf("legacy string form: %v, %+v", err, pc.Policy)
	}
	if pc, err = ParsePolicyConfig([]byte(`{}`)); err != nil || pc.Policy.Name != core.PolicyFreeFirst {
		t.Errorf("empty config: %v, %+v", err, pc.Policy)
	}
	// With a scenario, JobSpec() wraps it and injects the policy.
	pc, err = ParsePolicyConfig([]byte(`{"policy":"free-first","scenario":{"greendimm":true,"ksm":true,"hours":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec := pc.JobSpec()
	if spec.Kind != KindVMServer || !spec.VMServer.KSM || spec.VMServer.Hours != 0.5 ||
		spec.VMServer.Policy.Name != core.PolicyFreeFirst {
		t.Errorf("JobSpec() = %+v", spec)
	}
	if _, err := spec.Normalize(); err != nil {
		t.Errorf("config-built spec does not validate: %v", err)
	}

	bad := []string{
		`{"policy":"bogus"}`,
		`{"policy":{"name":"age-threshold","params":{"min_idle_s":-1}}}`,
		`{"policy":"free-first","oops":1}`,                                               // unknown top-level field
		`{"policy":"free-first","scenario":{"policy":"random"}}`,                         // policy belongs at the top level
		`{"policy":"free-first","scenario":{"capacity_gb":100}}`,                         // invalid scenario caught at parse time
		`{"policy":"free-first"} trailing`,                                               // trailing garbage
		`{"policy":{"name":"heat-tier","tracker":"idle-age","params":{"halflife_s":1}}}`, // param of unselected tracker
	}
	for _, raw := range bad {
		if _, err := ParsePolicyConfig([]byte(raw)); err == nil {
			t.Errorf("config %s parsed without error", raw)
		}
	}
}

// FuzzPolicyConfigParse probes the config parser: it must never panic,
// and every accepted config must be stable — its own JSON output parses
// back to the same normalized policy, and normalization is idempotent.
func FuzzPolicyConfigParse(f *testing.F) {
	f.Add([]byte(`{"policy":"free-first"}`))
	f.Add([]byte(`{"policy":{"name":"age-threshold","params":{"min_idle_s":3}}}`))
	f.Add([]byte(`{"policy":{"name":"heat-tier","tracker":"access-count"},"scenario":{"greendimm":true,"hours":0.1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"policy":{"name":"bogus"}}`))
	f.Add([]byte(`{"policy":"removable-first","scenario":{"ksm":true}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParsePolicyConfig(data)
		if err != nil {
			return
		}
		again, err := c.Policy.Normalized()
		if err != nil {
			t.Fatalf("accepted policy %+v fails re-normalization: %v", c.Policy, err)
		}
		if again.Fingerprint() != c.Policy.Fingerprint() {
			t.Fatalf("normalization not idempotent: %s vs %s", again.Fingerprint(), c.Policy.Fingerprint())
		}
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshaling accepted config %+v: %v", c, err)
		}
		c2, err := ParsePolicyConfig(wire)
		if err != nil {
			t.Fatalf("re-parsing own output %s: %v", wire, err)
		}
		if c2.Policy.Fingerprint() != c.Policy.Fingerprint() {
			t.Fatalf("round trip changed the policy: %s vs %s", c2.Policy.Fingerprint(), c.Policy.Fingerprint())
		}
		// A parseable config always yields a submittable job spec.
		if _, err := SpecHash(c.JobSpec()); err != nil {
			t.Fatalf("JobSpec() of accepted config %s does not hash: %v", wire, err)
		}
	})
}
