package ramzzz

import (
	"testing"

	"greendimm/internal/addr"
	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

const pageMB = 1 << 20

func setup(t *testing.T, interleaved bool) (*sim.Engine, *kernel.Mem, *Daemon) {
	t.Helper()
	org := dram.Org64GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: pageMB})
	if err != nil {
		t.Fatal(err)
	}
	m, err := addr.NewMapper(org, interleaved)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(eng, mem, m, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, mem, d
}

// scatter allocates across several ranks then frees most of it, leaving a
// sparse footprint spread over the low ranks.
func scatter(t *testing.T, mem *kernel.Mem) {
	t.Helper()
	// 12GB across 3 ranks (4GB ranks), as 3 owners.
	for o := uint32(10); o < 13; o++ {
		if _, err := mem.AllocPages(4096, true, o); err != nil {
			t.Fatal(err)
		}
	}
	// Free two owners' pages except a remnant, leaving ranks 1 and 2
	// lightly occupied (interleaved ownership keeps remnants spread).
	mem.FreeOwnerPages(11, 4096-300)
	mem.FreeOwnerPages(12, 4096-300)
}

func occupiedRanks(d *Daemon) int {
	perRank, _ := d.Census()
	n := 0
	for _, c := range perRank {
		if c > 0 {
			n++
		}
	}
	return n
}

func TestPacksScatteredFootprint(t *testing.T) {
	_, mem, d := setup(t, false)
	scatter(t, mem)
	before := occupiedRanks(d)
	if before < 3 {
		t.Fatalf("setup: footprint occupies %d ranks, want >= 3", before)
	}
	for i := 0; i < 5; i++ {
		d.Epoch()
	}
	after := occupiedRanks(d)
	if after >= before {
		t.Errorf("RAMZzz did not consolidate: %d -> %d occupied ranks", before, after)
	}
	st := d.Stats()
	if st.MigratedPages == 0 || st.RanksEmptied == 0 {
		t.Errorf("stats = %+v, want migrations and emptied ranks", st)
	}
	// Owners keep all their pages.
	if mem.OwnerPageCount(11) != 300 || mem.OwnerPageCount(12) != 300 {
		t.Error("migration lost pages")
	}
	if mem.OwnerPageCount(10) != 4096 {
		t.Error("untouched owner lost pages")
	}
}

func TestInterleavingDefeatsRAMZzz(t *testing.T) {
	_, mem, d := setup(t, true)
	scatter(t, mem)
	for i := 0; i < 5; i++ {
		d.Epoch()
	}
	st := d.Stats()
	if st.MigratedPages != 0 {
		t.Errorf("RAMZzz migrated %d pages under interleaving; placement is futile there",
			st.MigratedPages)
	}
	// The census must classify interleaved pages as rank-spanning.
	_, spanning := d.Census()
	if spanning == 0 {
		t.Error("no pages reported as rank-spanning under interleaving")
	}
}

func TestRespectsMigrationBudget(t *testing.T) {
	eng, mem, _ := setup(t, false)
	m, err := addr.NewMapper(dram.Org64GB(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MigrateBudgetPages = 100
	d, err := New(eng, mem, m, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scatter(t, mem)
	d.Epoch()
	if got := d.Stats().MigratedPages; got > 100 {
		t.Errorf("migrated %d pages, budget 100", got)
	}
}

func TestSkipsHeavyRanks(t *testing.T) {
	eng, mem, _ := setup(t, false)
	m, err := addr.NewMapper(dram.Org64GB(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MinResidentPages = 100 // nothing qualifies
	d, err := New(eng, mem, m, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scatter(t, mem) // remnants are 300 pages per owner
	d.Epoch()
	if got := d.Stats().MigratedPages; got != 0 {
		t.Errorf("migrated %d pages from ranks above the residency bound", got)
	}
}

func TestUnmovablePagesBlockEmptying(t *testing.T) {
	_, mem, d := setup(t, false)
	// Pin a kernel page inside rank 1, plus a light movable remnant.
	if _, err := mem.AllocPages(4096, true, 10); err != nil { // fills rank 0
		t.Fatal(err)
	}
	if _, err := mem.AllocPages(10, false, kernel.KernelOwner); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.AllocPages(50, true, 11); err != nil {
		t.Fatal(err)
	}
	d.Epoch()
	st := d.Stats()
	if st.MigrationFails == 0 {
		t.Error("unmovable pages should register as migration failures")
	}
	if st.RanksEmptied != 0 {
		t.Error("rank with kernel pages reported as emptied")
	}
}

func TestPeriodicOperation(t *testing.T) {
	eng, mem, d := setup(t, false)
	scatter(t, mem)
	d.Start()
	eng.RunUntil(5 * sim.Second)
	d.Stop()
	if d.Stats().Epochs < 4 {
		t.Errorf("epochs = %d, want ~5", d.Stats().Epochs)
	}
	if occupiedRanks(d) >= 3 {
		t.Error("periodic operation failed to consolidate")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	org := dram.Org64GB()
	mem, _ := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: pageMB})
	m, _ := addr.NewMapper(org, false)
	if _, err := New(eng, mem, m, nil, Config{Epoch: 0, MigrateBudgetPages: 1}); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := New(eng, mem, m, nil, Config{Epoch: sim.Second}); err == nil {
		t.Error("zero budget accepted")
	}
	small, _ := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: pageMB})
	if _, err := New(eng, small, m, nil, DefaultConfig()); err == nil {
		t.Error("size mismatch accepted")
	}
}
