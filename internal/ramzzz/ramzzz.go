// Package ramzzz implements the RAMZzz baseline (Wu et al., SC'12) as a
// working daemon rather than the analytic adjustment internal/baseline
// uses for the Fig. 9/10 comparison: every epoch it classifies ranks by
// access count, migrates pages out of cold, lightly-occupied ranks into
// hot ranks, and relies on the memory controller's idle policy to demote
// the emptied ranks to self-refresh.
//
// Its limitation — the one the GreenDIMM paper leans on — falls out
// naturally here: under an interleaved address map, every page spans
// every rank, so the per-rank page census finds no rank worth emptying
// and the daemon migrates nothing.
package ramzzz

import (
	"fmt"
	"sort"

	"greendimm/internal/addr"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

// AccessSource supplies per-global-rank access counts (satisfied by
// *mc.Controller).
type AccessSource interface {
	AccessesByRank() []int64
}

// Config tunes the daemon.
type Config struct {
	// Epoch is the reorganization period (the RAMZzz paper uses epochs
	// of tens of ms to seconds; 1s matches our monitor granularity).
	Epoch sim.Time
	// MigrateBudgetPages bounds migrations per epoch (migration has real
	// bandwidth cost; RAMZzz rate-limits it).
	MigrateBudgetPages int64
	// MinResidentPages: ranks holding more than this many pages are not
	// worth emptying this epoch.
	MinResidentPages int64
	// HotAccessFrac: a rank receiving more than this fraction of the
	// epoch's accesses is hot and never a victim, however small its
	// residency.
	HotAccessFrac float64
}

// DefaultConfig returns a paper-faithful setup for 1MB-page simulations.
func DefaultConfig() Config {
	return Config{
		Epoch:              sim.Second,
		MigrateBudgetPages: 2048,
		MinResidentPages:   4096,
		HotAccessFrac:      0.05,
	}
}

// Stats accumulates daemon activity.
type Stats struct {
	Epochs         int64
	MigratedPages  int64
	RanksEmptied   int64
	MigrationFails int64
}

// Daemon is the RAMZzz reorganizer.
type Daemon struct {
	eng    *sim.Engine
	mem    *kernel.Mem
	mapper *addr.Mapper
	src    AccessSource // optional; page census alone works without it
	cfg    Config

	rankBytes    int64
	totalRanks   int
	prevAccesses []int64
	running      bool
	stats        Stats
}

// New builds a daemon. The mapper must be the controller's, so the page
// census sees the same rank placement the hardware uses.
func New(eng *sim.Engine, mem *kernel.Mem, mapper *addr.Mapper, src AccessSource, cfg Config) (*Daemon, error) {
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("ramzzz: non-positive epoch")
	}
	if cfg.MigrateBudgetPages <= 0 {
		return nil, fmt.Errorf("ramzzz: non-positive migration budget")
	}
	org := mapper.Org()
	if org.TotalBytes() != mem.NPages()*mem.PageBytes() {
		return nil, fmt.Errorf("ramzzz: memory (%d) and DRAM (%d) sizes differ",
			mem.NPages()*mem.PageBytes(), org.TotalBytes())
	}
	return &Daemon{
		eng: eng, mem: mem, mapper: mapper, src: src, cfg: cfg,
		rankBytes:  org.RankBytes(),
		totalRanks: org.TotalRanks(),
	}, nil
}

// Start arms the epoch timer.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.arm()
}

// Stop pauses the daemon.
func (d *Daemon) Stop() { d.running = false }

func (d *Daemon) arm() {
	d.eng.AfterDaemon(d.cfg.Epoch, func() {
		if !d.running {
			return
		}
		d.Epoch()
		d.arm()
	})
}

// Stats returns accumulated counters.
func (d *Daemon) Stats() Stats { return d.stats }

// rankOfPage returns the global rank a page maps to, or -1 when the page
// spans multiple ranks (interleaved mapping) and is therefore unmovable in
// the rank-packing sense.
func (d *Daemon) rankOfPage(pfn kernel.PFN) int {
	base := uint64(pfn) * uint64(d.mem.PageBytes())
	first, err := d.mapper.Decode(base)
	if err != nil {
		return -1
	}
	org := d.mapper.Org()
	rank := first.Channel*org.RanksPerChannel() + first.Rank
	// Sample another line of the page; interleaved maps place it
	// elsewhere.
	if d.mem.PageBytes() >= 128 {
		second, err := d.mapper.Decode(base + 64)
		if err != nil {
			return -1
		}
		if r2 := second.Channel*org.RanksPerChannel() + second.Rank; r2 != rank {
			return -1
		}
	}
	return rank
}

// Census counts resident (allocated) pages per global rank; the second
// return value reports pages that span ranks (interleaved placement).
func (d *Daemon) Census() (perRank []int64, spanning int64) {
	perRank = make([]int64, d.totalRanks)
	for pfn := kernel.PFN(0); pfn < kernel.PFN(d.mem.NPages()); pfn++ {
		switch d.mem.State(pfn) {
		case kernel.PageMovable, kernel.PageUnmovable:
			if r := d.rankOfPage(pfn); r >= 0 {
				perRank[r]++
			} else {
				spanning++
			}
		}
	}
	return perRank, spanning
}

// Epoch performs one reorganization pass.
func (d *Daemon) Epoch() {
	d.stats.Epochs++
	perRank, spanning := d.Census()
	if spanning > 0 {
		// Interleaved placement: pages have no single home rank, rank
		// packing is impossible — RAMZzz's blind spot.
		return
	}
	// Epoch access delta per rank (hotness).
	var access []int64
	if d.src != nil {
		cur := d.src.AccessesByRank()
		access = make([]int64, len(cur))
		for i := range cur {
			prev := int64(0)
			if i < len(d.prevAccesses) {
				prev = d.prevAccesses[i]
			}
			access[i] = cur[i] - prev
		}
		d.prevAccesses = cur
	}

	// Victim ranks: few resident pages, coldest first. Skip rank-spanning
	// kernel pinned ranks implicitly (unmovable pages fail migration and
	// count as fails; cheap enough at this census granularity).
	type cand struct {
		rank  int
		pages int64
		acc   int64
	}
	var totalAccess int64
	for _, a := range access {
		totalAccess += a
	}
	var victims []cand
	for r, n := range perRank {
		if n == 0 || n > d.cfg.MinResidentPages {
			continue
		}
		a := int64(0)
		if access != nil && r < len(access) {
			a = access[r]
		}
		// Hot ranks are destinations, never victims.
		if totalAccess > 0 && float64(a) > d.cfg.HotAccessFrac*float64(totalAccess) {
			continue
		}
		victims = append(victims, cand{rank: r, pages: n, acc: a})
	}
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].acc != victims[j].acc {
			return victims[i].acc < victims[j].acc
		}
		if victims[i].pages != victims[j].pages {
			return victims[i].pages < victims[j].pages
		}
		return victims[i].rank > victims[j].rank // prefer emptying high ranks
	})

	// Destinations must avoid EVERY victim rank, or victims would just
	// swap pages among themselves forever.
	victimSet := map[int]bool{}
	for _, v := range victims {
		victimSet[v.rank] = true
	}
	avoid := func(p kernel.PFN) bool {
		return victimSet[int(int64(p)*d.mem.PageBytes()/d.rankBytes)]
	}
	budget := d.cfg.MigrateBudgetPages
	for _, v := range victims {
		if budget <= 0 {
			return
		}
		if v.pages > budget {
			continue // cannot finish this rank this epoch; try a smaller one
		}
		if d.emptyRank(v.rank, avoid, &budget) {
			d.stats.RanksEmptied++
		}
	}
}

// emptyRank migrates every movable page out of the rank. The buddy
// allocator's lowest-first placement naturally packs destinations into
// the hot low ranks. Reports whether the rank ended empty.
func (d *Daemon) emptyRank(rank int, avoid func(kernel.PFN) bool, budget *int64) bool {
	lo, hi := d.rankPFNRange(rank)
	empty := true
	for pfn := lo; pfn < hi && *budget > 0; pfn++ {
		switch d.mem.State(pfn) {
		case kernel.PageMovable:
			if _, err := d.mem.MigratePageAvoid(pfn, avoid); err != nil {
				d.stats.MigrationFails++
				empty = false
				continue
			}
			// The freed frame goes back to the allocator.
			d.mem.Unisolate(pfn)
			d.stats.MigratedPages++
			*budget--
		case kernel.PageUnmovable:
			d.stats.MigrationFails++
			empty = false
		}
	}
	if *budget <= 0 {
		// Unfinished sweep: check the remainder.
		for pfn := lo; pfn < hi; pfn++ {
			st := d.mem.State(pfn)
			if st == kernel.PageMovable || st == kernel.PageUnmovable {
				return false
			}
		}
	}
	return empty
}

// rankPFNRange converts a global rank index to its PFN range under the
// contiguous mapping (rank r owns one contiguous slab).
func (d *Daemon) rankPFNRange(rank int) (lo, hi kernel.PFN) {
	// Contiguous map order is channel-major: channel owns
	// RanksPerChannel consecutive slabs.
	pagesPerRank := d.rankBytes / d.mem.PageBytes()
	lo = kernel.PFN(int64(rank) * pagesPerRank)
	return lo, lo + kernel.PFN(pagesPerRank)
}
