package sim

import (
	"testing"
)

// The sharded merge replays schedule calls in reconstructed sequential
// order and relies on one invariant of the base engine: events at equal
// Time always dispatch in schedule (seq) order, through any amount of
// free-list churn. These tests pin that invariant before anything builds
// on it.

// tieScript drives an engine from a byte script: each byte schedules one
// event whose time is a small offset from a moving base (forcing heavy
// equal-time collisions), alternating daemon/normal and nesting schedules
// inside callbacks to churn the free list. Every scheduled event records
// its shadow schedule index; the dispatch log must come out sorted by
// (time, schedule index).
func tieScript(t *testing.T, script []byte) {
	t.Helper()
	e := NewEngine()
	type rec struct {
		at  Time
		idx int
	}
	var log []rec
	idx := 0
	var schedule func(depth int, b byte)
	schedule = func(depth int, b byte) {
		// Offsets 0..3 from the current time: mostly ties.
		at := e.Now() + Time(b&3)*Nanosecond
		i := idx
		idx++
		fn := func() {
			log = append(log, rec{at: e.Now(), idx: i})
			if depth < 3 && b&8 != 0 {
				// Nested schedule from inside a callback: reuses the slot
				// recycled just before this callback ran.
				schedule(depth+1, b>>2)
			}
		}
		if b&4 != 0 {
			e.AtDaemon(at, fn)
		} else {
			e.At(at, fn)
		}
	}
	for _, b := range script {
		schedule(0, b)
		if b&16 != 0 {
			// Interleave partial draining so later schedules reuse freed
			// events while earlier ties are still queued.
			e.RunUntil(e.Now() + Time(b&3)*Nanosecond)
		}
	}
	e.Run()
	for k := 1; k < len(log); k++ {
		a, b := log[k-1], log[k]
		if a.at > b.at || (a.at == b.at && a.idx > b.idx) {
			t.Fatalf("dispatch %d out of order: (t=%v, sched=%d) before (t=%v, sched=%d)",
				k, a.at, a.idx, b.at, b.idx)
		}
	}
}

func FuzzEngineTieBreak(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{8, 12, 8, 12, 24, 28, 31, 0, 15, 16, 17, 255})
	f.Add([]byte{255, 254, 253, 31, 30, 29, 16, 20, 24, 28})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			t.Skip("bound the event count")
		}
		tieScript(t, script)
	})
}

// TestTieBreakSeeds runs the fuzz corpus seeds as a plain test so the
// invariant is exercised by `go test` without -fuzz.
func TestTieBreakSeeds(t *testing.T) {
	seeds := [][]byte{
		{0},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		{8, 12, 8, 12, 24, 28, 31, 0, 15, 16, 17, 255},
		{255, 254, 253, 31, 30, 29, 16, 20, 24, 28},
	}
	for _, s := range seeds {
		tieScript(t, s)
	}
}
