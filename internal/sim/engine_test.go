package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{18 * Nanosecond, "18ns"},
		{768 * Nanosecond, "768ns"},
		{6 * Microsecond, "6us"},
		{1580 * Microsecond, "1.58ms"},
		{Second, "1s"},
		{-Second, "-1s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3.0 {
		t.Errorf("Milliseconds = %v, want 3", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (750 * Nanosecond).Microseconds(); got != 0.75 {
		t.Errorf("Microseconds = %v, want 0.75", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	n := e.Run()
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("events ran out of order: %v", order)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineStableSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	if n := e.RunUntil(20); n != 2 || ran != 2 {
		t.Fatalf("RunUntil(20) executed %d events (ran=%d), want 2", n, ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v after RunUntil(20), want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// RunUntil past all events advances the clock to the deadline.
	if n := e.RunUntil(100); n != 1 {
		t.Fatalf("second RunUntil executed %d, want 1", n)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(7, recurse)
		}
	}
	e.At(1, recurse)
	e.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if e.Now() != 1+4*7 {
		t.Errorf("Now = %v, want 29", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran = %d after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// A fork taken at the same parent state yields the same child stream,
	// regardless of what the parent does afterwards.
	p1 := NewRNG(99)
	c1 := p1.Fork()
	p2 := NewRNG(99)
	c2 := p2.Fork()
	p2.Float64() // perturb parent 2 only
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("forked child streams diverged")
		}
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(1)
	const n = 20000
	sumExp, sumPar := 0.0, 0.0
	for i := 0; i < n; i++ {
		sumExp += g.Exp(5)
		sumPar += g.Pareto(1, 3)
	}
	if m := sumExp / n; m < 4.7 || m > 5.3 {
		t.Errorf("Exp(5) mean = %v, want ~5", m)
	}
	// Pareto(1,3) mean = alpha*xm/(alpha-1) = 1.5.
	if m := sumPar / n; m < 1.35 || m > 1.65 {
		t.Errorf("Pareto(1,3) mean = %v, want ~1.5", m)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(2)
	z := g.NewZipf(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank 1 should draw roughly 1/H(100) ~ 19% of samples.
	frac := float64(counts[0]) / 50000
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("Zipf rank-1 fraction = %v, want ~0.19", frac)
	}
}

func TestWeightedPick(t *testing.T) {
	g := NewRNG(3)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[g.WeightedPick(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestTimeStringRoundTripsMagnitude(t *testing.T) {
	// Property: String never mislabels magnitude (e.g., ms value rendered
	// with "us" suffix). Checked by parsing the suffix back.
	f := func(raw int64) bool {
		tt := Time(raw % int64(2*Hour))
		if tt < 0 {
			tt = -tt
		}
		s := tt.String()
		switch {
		case tt >= Second:
			return s[len(s)-1] == 's' && s[len(s)-2] != 'm' && s[len(s)-2] != 'u' && s[len(s)-2] != 'n' && s[len(s)-2] != 'p'
		case tt >= Millisecond:
			return len(s) > 2 && s[len(s)-2:] == "ms"
		case tt >= Microsecond:
			return len(s) > 2 && s[len(s)-2:] == "us"
		case tt >= Nanosecond:
			return len(s) > 2 && s[len(s)-2:] == "ns"
		default:
			return len(s) > 2 && s[len(s)-2:] == "ps"
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDaemonEventsDoNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	daemonRan := 0
	var rearm func()
	rearm = func() {
		daemonRan++
		e.AfterDaemon(10, rearm) // perpetual chain, like DRAM refresh
	}
	e.AtDaemon(10, rearm)
	e.At(35, func() {})
	n := e.Run()
	// Run must execute the normal event and every daemon event before it,
	// then stop despite the pending daemon chain.
	if daemonRan != 3 { // t=10, 20, 30
		t.Errorf("daemon events ran %d times, want 3", daemonRan)
	}
	if n != 4 {
		t.Errorf("Run executed %d events, want 4", n)
	}
	if e.Pending() == 0 {
		t.Error("daemon chain should remain queued")
	}
	// RunUntil executes daemons regardless.
	e.RunUntil(65)
	if daemonRan != 6 { // 40, 50, 60
		t.Errorf("daemon events after RunUntil = %d, want 6", daemonRan)
	}
}

func TestRunWithOnlyDaemonsReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ran := false
	e.AtDaemon(5, func() { ran = true })
	if n := e.Run(); n != 0 || ran {
		t.Errorf("Run executed daemon-only queue: n=%d ran=%v", n, ran)
	}
}
