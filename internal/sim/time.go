// Package sim provides the discrete-event simulation substrate shared by
// every other package in this repository: a simulated clock, an event
// engine, and a deterministic random-number source.
//
// All simulated time is expressed as Time, an integer count of picoseconds.
// Picoseconds are fine enough to represent DDR4 clock periods exactly
// (DDR4-2133 tCK = 938ps after rounding) while an int64 still spans about
// 106 simulated days, comfortably more than the 24-hour traces simulated
// here.
package sim

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a float number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time with a unit chosen by magnitude, e.g. "1.58ms".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	switch {
	case t >= Second:
		return fmt.Sprintf("%s%.6gs", neg, t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%s%.6gns", neg, t.Nanoseconds())
	default:
		return fmt.Sprintf("%s%dps", neg, int64(t))
	}
}
