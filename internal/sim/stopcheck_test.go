package sim

import "testing"

// chain schedules a self-rescheduling event that runs n times, 1ns apart.
func chain(e *Engine, n int) {
	var step func()
	left := n
	step = func() {
		left--
		if left > 0 {
			e.After(Nanosecond, step)
		}
	}
	e.After(Nanosecond, step)
}

func TestStopCheckAbortsRun(t *testing.T) {
	e := NewEngine()
	chain(e, 10000)
	polls := 0
	e.SetStopCheck(100, func() bool {
		polls++
		return polls >= 3
	})
	ran := e.Run()
	if !e.Interrupted() {
		t.Fatal("Interrupted() = false after stop-check abort")
	}
	// The predicate is polled on entry and then every 100 events: the
	// third poll happens after 200 events executed.
	if ran != 200 {
		t.Errorf("ran %d events, want 200", ran)
	}
	if polls != 3 {
		t.Errorf("predicate polled %d times, want 3", polls)
	}
	if e.Pending() == 0 {
		t.Error("aborted run should leave the chain queued")
	}
}

func TestStopCheckAbortsRunUntil(t *testing.T) {
	e := NewEngine()
	chain(e, 10000)
	n := 0
	e.SetStopCheck(1, func() bool { n++; return n > 50 })
	ran := e.RunUntil(Second)
	if !e.Interrupted() {
		t.Fatal("Interrupted() = false after stop-check abort")
	}
	if ran != 50 {
		t.Errorf("ran %d events, want 50", ran)
	}
	if e.Now() >= Second {
		t.Errorf("aborted RunUntil advanced clock to deadline (%v)", e.Now())
	}
}

func TestStopCheckAlreadyCanceledRunsNothing(t *testing.T) {
	e := NewEngine()
	chain(e, 100)
	e.SetStopCheck(0, func() bool { return true })
	if ran := e.Run(); ran != 0 {
		t.Errorf("ran %d events with a pre-canceled check, want 0", ran)
	}
	if !e.Interrupted() {
		t.Error("Interrupted() = false")
	}
}

func TestStopCheckFalseIsTransparent(t *testing.T) {
	run := func(install bool) (int, Time) {
		e := NewEngine()
		chain(e, 1000)
		if install {
			e.SetStopCheck(7, func() bool { return false })
		}
		n := e.Run()
		return n, e.Now()
	}
	n0, t0 := run(false)
	n1, t1 := run(true)
	if n0 != n1 || t0 != t1 {
		t.Errorf("stop check perturbed the run: (%d, %v) vs (%d, %v)", n0, t0, n1, t1)
	}
	if n0 != 1000 {
		t.Errorf("chain ran %d events, want 1000", n0)
	}
}

func TestStopCheckClearedByNil(t *testing.T) {
	e := NewEngine()
	chain(e, 100)
	e.SetStopCheck(1, func() bool { return true })
	e.SetStopCheck(1, nil)
	if ran := e.Run(); ran != 100 {
		t.Errorf("ran %d events after clearing the check, want 100", ran)
	}
	if e.Interrupted() {
		t.Error("Interrupted() = true after a full run")
	}
}

func TestStopCheckReusableAfterAbort(t *testing.T) {
	e := NewEngine()
	chain(e, 100)
	stop := true
	e.SetStopCheck(1, func() bool { return stop })
	if ran := e.Run(); ran != 0 {
		t.Fatalf("first run executed %d events, want 0", ran)
	}
	stop = false
	if ran := e.Run(); ran != 100 {
		t.Errorf("resumed run executed %d events, want 100", ran)
	}
	if e.Interrupted() {
		t.Error("Interrupted() = true after a completed resume")
	}
}
