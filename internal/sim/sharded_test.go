package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// The sharded-engine contract: with lane views and a registered
// lookahead, Run/RunUntil produce results byte-identical to the
// sequential engine at any shard count, any GOMAXPROCS, any fan-out
// threshold, and any worker-budget outcome. These tests drive a
// synthetic multi-lane model (self-rescheduling per-lane chains, lane
// minis inside the lookahead, cross-shard messages beyond it, daemon
// churn) and compare full dispatch logs against the sequential run.

type shardModel struct {
	eng       *Engine
	lanes     []*laneActor
	L         Time
	globalLog []string
	counter   uint64
}

type laneActor struct {
	m       *shardModel
	id      int
	eng     *Engine
	rng     uint64
	left    int
	step    int
	globals int // cross-shard messages this actor may still send (lane-local state)
	log     []string
}

func (a *laneActor) next() uint64 {
	a.rng = a.rng*6364136223846793005 + 1442695040888963407
	return a.rng >> 33
}

func (a *laneActor) record(kind string) {
	a.log = append(a.log, fmt.Sprintf("%s@%d#%d", kind, a.eng.Now(), a.step))
	a.step++
}

// tick is a lane event: it touches only this actor's state, schedules
// further events on its own lane (some inside the lookahead window, some
// beyond it), and sends cross-shard messages only at >= now+L, exactly
// the discipline the memory controller follows.
func (a *laneActor) tick() {
	a.record("tick")
	if a.left <= 0 {
		return
	}
	a.left--
	now := a.eng.Now()
	r := a.next()
	d := Time(1+r%16) * Nanosecond // short: usually an in-window mini
	switch {
	case r%7 == 0:
		d = a.m.L + Time(r%64)*Nanosecond // always deferred
	case r%5 == 0:
		d = a.m.L/2 + Time(r%32)*Nanosecond // straddles the horizon
	}
	a.eng.At(now+d, a.tick)
	if r%3 == 0 {
		a.eng.AtDaemon(now+Time(1+r%8)*Nanosecond, func() { a.record("daemon") })
	}
	if r%4 == 0 && a.globals > 0 {
		a.globals--
		a.eng.AtGlobalFunc(now+a.m.L+Time(r%16)*Nanosecond, a.m.globalFn, a)
	}
}

// globalFn is a cross-shard completion: it runs on the global lane,
// mutates shared state, and pokes another lane.
func (m *shardModel) globalFn(v any) {
	src := v.(*laneActor)
	m.counter++
	m.globalLog = append(m.globalLog, fmt.Sprintf("g@%d from=%d n=%d", m.eng.Now(), src.id, m.counter))
	tgt := m.lanes[int(m.counter)%len(m.lanes)]
	tgt.eng.At(m.eng.Now()+Time(1+m.counter%4)*Nanosecond, func() { tgt.record("poke") })
}

func newShardModel(shards, nLanes int, cfg func(*Engine)) *shardModel {
	eng := NewEngine()
	if shards > 0 {
		eng.SetShards(shards)
	}
	m := &shardModel{eng: eng, L: 100 * Nanosecond}
	eng.SetShardLookahead(m.L)
	if cfg != nil {
		cfg(eng)
	}
	for i := 0; i < nLanes; i++ {
		a := &laneActor{m: m, id: i, eng: eng.Lane(i), rng: uint64(1 + i*7919), left: 120, globals: 8}
		m.lanes = append(m.lanes, a)
		a.eng.At(Time(1+i)*Nanosecond, a.tick)
	}
	return m
}

type shardOutcome struct {
	laneLogs  [][]string
	globalLog []string
	now       Time
	pending   int
	executed  int
}

func (m *shardModel) outcome(executed int) shardOutcome {
	o := shardOutcome{globalLog: m.globalLog, now: m.eng.Now(), pending: m.eng.Pending(), executed: executed}
	for _, a := range m.lanes {
		o.laneLogs = append(o.laneLogs, a.log)
	}
	return o
}

func diffOutcomes(t *testing.T, label string, want, got shardOutcome) {
	t.Helper()
	if want.now != got.now || want.pending != got.pending || want.executed != got.executed {
		t.Errorf("%s: now/pending/executed = %v/%d/%d, want %v/%d/%d",
			label, got.now, got.pending, got.executed, want.now, want.pending, want.executed)
	}
	for i := range want.laneLogs {
		a, b := want.laneLogs[i], got.laneLogs[i]
		if len(a) != len(b) {
			t.Errorf("%s: lane %d log length %d, want %d", label, i, len(b), len(a))
			continue
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s: lane %d entry %d = %q, want %q", label, i, k, b[k], a[k])
			}
		}
	}
	if len(want.globalLog) != len(got.globalLog) {
		t.Fatalf("%s: global log length %d, want %d", label, len(got.globalLog), len(want.globalLog))
	}
	for k := range want.globalLog {
		if want.globalLog[k] != got.globalLog[k] {
			t.Fatalf("%s: global entry %d = %q, want %q", label, k, got.globalLog[k], want.globalLog[k])
		}
	}
}

func TestShardedRunMatchesSequential(t *testing.T) {
	seq := newShardModel(0, 6, nil)
	want := seq.outcome(seq.eng.Run())

	cases := []struct {
		label  string
		shards int
		cfg    func(*Engine)
	}{
		{"shards=1", 1, nil},
		{"shards=2", 2, func(e *Engine) { e.SetShardFanout(2) }},
		{"shards=4", 4, func(e *Engine) { e.SetShardFanout(2) }},
		{"shards=4/default-fanout", 4, nil},
		{"shards=4/budget-denied", 4, func(e *Engine) {
			e.SetShardFanout(2)
			e.SetShardBudget(func() bool { return false }, nil)
		}},
		{"shards=3/lanes>shards", 3, func(e *Engine) { e.SetShardFanout(2) }},
	}
	for _, tc := range cases {
		m := newShardModel(tc.shards, 6, tc.cfg)
		got := m.outcome(m.eng.Run())
		diffOutcomes(t, tc.label, want, got)
		if tc.shards >= 2 && tc.label != "shards=4/default-fanout" && m.eng.windows == 0 {
			t.Errorf("%s: no fan-out window ever ran; the test exercised nothing", tc.label)
		}
	}
}

func TestShardedRunUntilMatchesSequential(t *testing.T) {
	const deadline = 2 * Microsecond
	seq := newShardModel(0, 4, nil)
	want := seq.outcome(seq.eng.RunUntil(deadline))
	// Continuing past the deadline must also agree (tail experiments run
	// warmup-then-horizon on one engine).
	want2 := seq.outcome(seq.eng.Run())
	for _, shards := range []int{2, 4} {
		m := newShardModel(shards, 4, func(e *Engine) { e.SetShardFanout(2) })
		got := m.outcome(m.eng.RunUntil(deadline))
		diffOutcomes(t, fmt.Sprintf("shards=%d", shards), want, got)
		got2 := m.outcome(m.eng.Run())
		diffOutcomes(t, fmt.Sprintf("shards=%d/continue", shards), want2, got2)
	}
}

func TestShardedAcrossGOMAXPROCS(t *testing.T) {
	seq := newShardModel(0, 4, nil)
	want := seq.outcome(seq.eng.Run())
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		m := newShardModel(4, 4, func(e *Engine) { e.SetShardFanout(2) })
		got := m.outcome(m.eng.Run())
		runtime.GOMAXPROCS(prev)
		diffOutcomes(t, fmt.Sprintf("GOMAXPROCS=%d", procs), want, got)
	}
}

// TestShardedBudgetAcquireRelease pins the worker-budget contract: every
// acquired slot is released by the end of the run, and no more than
// shards-1 slots are ever held per engine.
func TestShardedBudgetAcquireRelease(t *testing.T) {
	var held, peak, denied atomic.Int64
	acquire := func() bool {
		if held.Load() >= 2 { // budget of 2 extra workers
			denied.Add(1)
			return false
		}
		h := held.Add(1)
		if p := peak.Load(); h > p {
			peak.Store(h)
		}
		return true
	}
	release := func() { held.Add(-1) }

	seq := newShardModel(0, 6, nil)
	want := seq.outcome(seq.eng.Run())
	m := newShardModel(4, 6, func(e *Engine) {
		e.SetShardFanout(2)
		e.SetShardBudget(acquire, release)
	})
	got := m.outcome(m.eng.Run())
	diffOutcomes(t, "budgeted", want, got)
	if held.Load() != 0 {
		t.Errorf("run ended with %d budget slots still held", held.Load())
	}
	if peak.Load() > 3 {
		t.Errorf("held %d slots at peak, want <= shards-1 = 3", peak.Load())
	}
}

// TestLookaheadViolationPanics: a lane event scheduling a cross-shard
// message inside the lookahead window is a modelling bug the engine must
// refuse, not silently reorder. Workers are budget-denied so every lane
// runs on the coordinator and the panic is recoverable here.
func TestLookaheadViolationPanics(t *testing.T) {
	eng := NewEngine()
	eng.SetShards(2)
	eng.SetShardLookahead(100 * Nanosecond)
	eng.SetShardFanout(2)
	eng.SetShardBudget(func() bool { return false }, nil)
	noop := func(any) {}
	for i := 0; i < 2; i++ {
		lane := eng.Lane(i)
		lane.At(Time(1+i)*Nanosecond, func() {
			lane.AtGlobalFunc(lane.Now()+Nanosecond, noop, nil) // < lookahead: illegal
		})
		lane.At(Time(3+i)*Nanosecond, func() {}) // pad the window past the threshold
	}
	// Keep a normal event outside the window so the floor rule does not
	// force the offending events onto the sequential path.
	eng.At(Microsecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a cross-shard schedule inside the lookahead window")
		}
	}()
	eng.Run()
}

// TestLaneViewSequentialIdentity: with sharding off, Lane returns the
// engine itself and AtGlobalFunc is AtFunc — model code written against
// the view API runs unchanged.
func TestLaneViewSequentialIdentity(t *testing.T) {
	eng := NewEngine()
	if eng.Lane(3) != eng {
		t.Fatal("Lane with sharding off must return the engine itself")
	}
	ran := false
	eng.AtGlobalFunc(Nanosecond, func(any) { ran = true }, nil)
	eng.Run()
	if !ran {
		t.Fatal("AtGlobalFunc event did not run")
	}
}

// TestShardedDaemonTail pins the normal-count floor rule: daemon events
// scheduled past the last ordinary event must not run just because they
// share a window with it.
func TestShardedDaemonTail(t *testing.T) {
	run := func(shards int) (int, int) {
		eng := NewEngine()
		if shards > 0 {
			eng.SetShards(shards)
			eng.SetShardFanout(2)
		}
		eng.SetShardLookahead(Microsecond)
		var daemons [4]int // per-actor slots: lane events only touch their own
		for i := 0; i < 4; i++ {
			i := i
			lane := eng.Lane(i)
			var chain func()
			left := 10
			chain = func() {
				if left == 0 {
					return
				}
				left--
				lane.After(Nanosecond, chain)
				lane.AfterDaemon(2*Nanosecond, func() { daemons[i]++ })
			}
			lane.At(Time(i)*Nanosecond, chain)
		}
		n := eng.Run()
		return n, daemons[0] + daemons[1] + daemons[2] + daemons[3]
	}
	wantN, wantD := run(0)
	for _, shards := range []int{2, 4} {
		gotN, gotD := run(shards)
		if gotN != wantN || gotD != wantD {
			t.Errorf("shards=%d: executed/daemons = %d/%d, want %d/%d", shards, gotN, gotD, wantN, wantD)
		}
	}
}
