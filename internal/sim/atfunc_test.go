package sim

import "testing"

// TestAtFuncOrdering interleaves closure events and arg-carrying events
// at the same timestamp: both forms share one sequence counter, so they
// must run in scheduling order regardless of which API scheduled them.
func TestAtFuncOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	appendIdx := func(v any) { order = append(order, v.(int)) }
	e.At(Nanosecond, func() { order = append(order, 0) })
	e.AtFunc(Nanosecond, appendIdx, 1)
	e.At(Nanosecond, func() { order = append(order, 2) })
	e.AtDaemonFunc(Nanosecond, appendIdx, 3)
	e.AfterFunc(Nanosecond, appendIdx, 4)
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed At/AtFunc events ran out of order: %v", order)
		}
	}
}

// TestAtFuncRecycleClearsArg checks that a dispatched arg-carrying event
// drops both its handler and its argument when it lands on the free
// list, so pooled args aren't retained by idle events.
func TestAtFuncRecycleClearsArg(t *testing.T) {
	e := NewEngine()
	arg := new(int)
	e.AtFunc(Nanosecond, func(any) {}, arg)
	e.Run()
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1", len(e.free))
	}
	ev := e.free[0]
	if ev.afn != nil || ev.arg != nil || ev.fn != nil {
		t.Fatalf("recycled event retains callback state: fn set=%t afn set=%t arg=%v",
			ev.fn != nil, ev.afn != nil, ev.arg)
	}
}

// TestAtFuncSteadyStateAllocs is the point of the API: a self-
// rescheduling handler bound once, passed a pooled pointer argument,
// dispatches and reschedules with zero allocations — no closure is
// created per event and the pointer is boxed for free.
func TestAtFuncSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	ticks := new(int)
	var step func(any)
	step = func(v any) {
		*v.(*int)++
		e.AfterFunc(Nanosecond, step, v)
	}
	e.AfterFunc(Nanosecond, step, ticks)
	e.RunUntil(100 * Nanosecond) // warm up queue and free list

	deadline := e.Now()
	avg := testing.AllocsPerRun(1000, func() {
		deadline += Nanosecond
		e.RunUntil(deadline)
	})
	if avg != 0 {
		t.Fatalf("steady-state AtFunc dispatch allocates %.2f allocs/op, want 0", avg)
	}
	if *ticks == 0 {
		t.Fatal("handler never ran")
	}
}

// TestAtFuncPastPanics keeps the past-scheduling guard on the arg path.
func TestAtFuncPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("AtFunc in the past did not panic")
		}
	}()
	e.AtFunc(Nanosecond, func(any) {}, nil)
}
