package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a particular simulated time.
// Events scheduled for the same time run in scheduling order (stable).
// Daemon events (periodic refresh, idle timers) do not keep Run alive:
// Run returns once only daemon events remain.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	daemon bool
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation engine.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	normal  int // count of queued non-daemon events
	stopped bool

	checkEvery int         // poll the stop check every this many events
	checkIn    int         // events left until the next poll
	stopCheck  func() bool // nil: no external cancellation
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering events would
// corrupt every downstream statistic.
func (e *Engine) At(at Time, fn func()) {
	e.push(at, fn, false)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtDaemon schedules a daemon event: it runs normally under RunUntil and
// whenever ordinary events are still pending, but does not by itself keep
// Run alive. Use for perpetual background activity (refresh, idle timers).
func (e *Engine) AtDaemon(at Time, fn func()) {
	e.push(at, fn, true)
}

// AfterDaemon schedules a daemon event d after the current time.
func (e *Engine) AfterDaemon(d Time, fn func()) { e.AtDaemon(e.now+d, fn) }

func (e *Engine) push(at Time, fn func(), daemon bool) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	if !daemon {
		e.normal++
	}
	heap.Push(&e.queue, &Event{at: at, seq: e.seq, fn: fn, daemon: daemon})
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the event that is
// executing now finishes.
func (e *Engine) Stop() { e.stopped = true }

// DefaultStopCheckEvery is the polling stride SetStopCheck uses when the
// caller passes every <= 0. It trades cancellation latency (a few thousand
// events, microseconds of wall time) against predicate-call overhead on
// the hot dispatch loop.
const DefaultStopCheckEvery = 4096

// SetStopCheck installs an external cancellation predicate: Run and
// RunUntil poll stop every `every` executed events (and once on entry) and
// return early — exactly as if Stop had been called — when it reports
// true. The predicate must be cheap and may be called from the run loop
// only, never concurrently with itself. every <= 0 selects
// DefaultStopCheckEvery; a nil stop clears the hook.
//
// This is the hook long-running services use to impose deadlines on
// otherwise-unbounded scenarios: the predicate typically closes over a
// context.Context's Err. A run aborted this way leaves the engine state
// (clock, queue) valid but the simulation incomplete; Interrupted reports
// whether that happened.
func (e *Engine) SetStopCheck(every int, stop func() bool) {
	if every <= 0 {
		every = DefaultStopCheckEvery
	}
	e.checkEvery = every
	e.checkIn = 0
	e.stopCheck = stop
}

// Interrupted reports whether the most recent Run or RunUntil returned
// early because of Stop or the SetStopCheck predicate rather than by
// exhausting its work.
func (e *Engine) Interrupted() bool { return e.stopped }

// interrupted polls the external stop check on its stride and folds the
// answer into e.stopped. Called once per loop iteration.
func (e *Engine) interrupted() bool {
	if e.stopped {
		return true
	}
	if e.stopCheck == nil {
		return false
	}
	if e.checkIn > 0 {
		e.checkIn--
		return false
	}
	e.checkIn = e.checkEvery - 1
	if e.stopCheck() {
		e.stopped = true
	}
	return e.stopped
}

// RunUntil executes events in time order until the queue is empty or the
// next event is later than deadline. The clock is left at the time of the
// last executed event (or at deadline if it advanced past all events).
// It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	e.checkIn = 0
	n := 0
	for len(e.queue) > 0 && !e.interrupted() {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if !next.daemon {
			e.normal--
		}
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// Run executes events in time order until no non-daemon events remain or
// Stop is called. Daemon events occurring before the last ordinary event
// still execute; trailing daemon events stay queued.
// It returns the number of events executed.
func (e *Engine) Run() int {
	e.stopped = false
	e.checkIn = 0
	n := 0
	for e.normal > 0 && !e.interrupted() {
		ev := heap.Pop(&e.queue).(*Event)
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		ev.fn()
		n++
	}
	return n
}
