package sim

import (
	"fmt"
	"sync"
)

// Event is a callback scheduled to run at a particular simulated time.
// Events scheduled for the same time run in scheduling order (stable).
// Daemon events (periodic refresh, idle timers) do not keep Run alive:
// Run returns once only daemon events remain.
//
// Event objects are owned by the engine and recycled through a free list
// once dispatched, so steady-state scheduling (the self-rescheduling
// timer pattern every model here uses) allocates nothing per event.
//
// An event carries either a plain callback (fn) or an argument-carrying
// callback (afn + arg); the AtFunc family schedules the latter so hot
// paths can reuse one long-lived handler instead of allocating a closure
// per event.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	afn    func(any)
	arg    any
	daemon bool
	// lane tags the shard that owns this event's state: 0 is the global
	// lane (cross-channel actors — cores, policy, completions), 1..shards
	// are per-channel lanes whose events touch only that channel's state.
	// Always 0 when sharding is off. See sharded.go.
	lane int32
}

// Engine is a deterministic discrete-event simulation engine.
// The zero value is not usable; call NewEngine.
//
// The event queue is a hand-rolled binary min-heap over (at, seq) rather
// than container/heap: the interface indirection and any-boxing of the
// stdlib heap cost real time on the dispatch path, which executes tens of
// millions of events per experiment sweep.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*Event
	free    []*Event // dispatched events awaiting reuse
	normal  int      // count of queued non-daemon events
	stopped bool

	checkEvery int         // poll the stop check every this many events
	checkIn    int         // events left until the next poll
	stopCheck  func() bool // nil: no external cancellation

	// Channel sharding (sharded.go). On the root engine: shard count,
	// lookahead, lane views, and coordinator scratch. On a lane view
	// (parent != nil) only parent, lane and ls are meaningful; every other
	// field is unused.
	parent      *Engine
	lane        int32
	ls          *laneState
	shards      int
	lookahead   Time
	fanoutMin   int
	stride      int // sequential dispatches left before the next fan-out try
	budgetAcq   func() bool
	budgetRel   func()
	lanes       []*Engine
	scratch     []*Event
	activeLanes []*laneState
	mergeIdx    []int
	wg          sync.WaitGroup
	pool        *shardPool
	windows     int // fan-out windows dispatched (observability/testing)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time. On a lane view inside a fan-out
// window it is the lane's mini-clock (the time of the lane event being
// dispatched); everywhere else it is the root engine's clock.
func (e *Engine) Now() Time {
	if e.parent != nil {
		if e.ls.active {
			return e.ls.now
		}
		return e.parent.now
	}
	return e.now
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering events would
// corrupt every downstream statistic.
func (e *Engine) At(at Time, fn func()) {
	e.push(at, fn, false)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.Now()+d, fn) }

// AtDaemon schedules a daemon event: it runs normally under RunUntil and
// whenever ordinary events are still pending, but does not by itself keep
// Run alive. Use for perpetual background activity (refresh, idle timers).
func (e *Engine) AtDaemon(at Time, fn func()) {
	e.push(at, fn, true)
}

// AfterDaemon schedules a daemon event d after the current time.
func (e *Engine) AfterDaemon(d Time, fn func()) { e.AtDaemon(e.Now()+d, fn) }

// AtFunc schedules fn(arg) at absolute time at. It orders exactly like
// At (same seq counter, same heap), but because fn is typically a
// long-lived handler bound once at construction and arg a pooled object,
// the call allocates nothing: no closure is created and pointer args are
// boxed for free.
func (e *Engine) AtFunc(at Time, fn func(any), arg any) {
	e.pushArg(at, fn, arg, false)
}

// AfterFunc schedules fn(arg) d after the current time.
func (e *Engine) AfterFunc(d Time, fn func(any), arg any) { e.AtFunc(e.Now()+d, fn, arg) }

// AtDaemonFunc schedules fn(arg) as a daemon event (see AtDaemon).
func (e *Engine) AtDaemonFunc(at Time, fn func(any), arg any) {
	e.pushArg(at, fn, arg, true)
}

// AfterDaemonFunc schedules a daemon fn(arg) d after the current time.
func (e *Engine) AfterDaemonFunc(d Time, fn func(any), arg any) {
	e.AtDaemonFunc(e.Now()+d, fn, arg)
}

func (e *Engine) push(at Time, fn func(), daemon bool) {
	if e.parent != nil {
		e.laneSched(at, e.lane, fn, nil, nil, daemon)
		return
	}
	ev := e.alloc(at, daemon)
	ev.fn = fn
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Engine) pushArg(at Time, fn func(any), arg any, daemon bool) {
	if e.parent != nil {
		e.laneSched(at, e.lane, nil, fn, arg, daemon)
		return
	}
	ev := e.alloc(at, daemon)
	ev.afn, ev.arg = fn, arg
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// alloc pops a recycled Event (or makes one) with at/seq/daemon set and
// both callback forms clear.
func (e *Engine) alloc(at Time, daemon bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	if !daemon {
		e.normal++
	}
	if k := len(e.free) - 1; k >= 0 {
		ev := e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		ev.at, ev.seq, ev.daemon, ev.lane = at, e.seq, daemon, 0
		return ev
	}
	return &Event{at: at, seq: e.seq, daemon: daemon}
}

// less orders the heap by time, then scheduling order.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			return
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	ev := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return ev
}

// recycle returns a dispatched event to the free list. The callback and
// argument references are dropped so the closure (and whatever it
// captures or points at) is released even if the event idles on the
// free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.afn, ev.arg = nil, nil
	e.free = append(e.free, ev)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the event that is
// executing now finishes.
func (e *Engine) Stop() { e.stopped = true }

// DefaultStopCheckEvery is the polling stride SetStopCheck uses when the
// caller passes every <= 0. It trades cancellation latency (a few thousand
// events, microseconds of wall time) against predicate-call overhead on
// the hot dispatch loop.
const DefaultStopCheckEvery = 4096

// SetStopCheck installs an external cancellation predicate: Run and
// RunUntil poll stop every `every` executed events (and once on entry) and
// return early — exactly as if Stop had been called — when it reports
// true. The predicate must be cheap and may be called from this engine's
// run loop only; when several engines share one predicate (a parallel
// experiment sweep polling one job context), it must be safe to call
// concurrently with itself. every <= 0 selects DefaultStopCheckEvery; a
// nil stop clears the hook.
//
// This is the hook long-running services use to impose deadlines on
// otherwise-unbounded scenarios: the predicate typically closes over a
// context.Context's Err. A run aborted this way leaves the engine state
// (clock, queue) valid but the simulation incomplete; Interrupted reports
// whether that happened.
func (e *Engine) SetStopCheck(every int, stop func() bool) {
	if every <= 0 {
		every = DefaultStopCheckEvery
	}
	e.checkEvery = every
	e.checkIn = 0
	e.stopCheck = stop
}

// Interrupted reports whether the most recent Run or RunUntil returned
// early because of Stop or the SetStopCheck predicate rather than by
// exhausting its work.
func (e *Engine) Interrupted() bool { return e.stopped }

// interrupted polls the external stop check on its stride and folds the
// answer into e.stopped. Called once per loop iteration.
func (e *Engine) interrupted() bool {
	if e.stopped {
		return true
	}
	if e.stopCheck == nil {
		return false
	}
	if e.checkIn > 0 {
		e.checkIn--
		return false
	}
	e.checkIn = e.checkEvery - 1
	if e.stopCheck() {
		e.stopped = true
	}
	return e.stopped
}

// RunUntil executes events in time order until the queue is empty or the
// next event is later than deadline. The clock is left at the time of the
// last executed event (or at deadline if it advanced past all events).
// It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	if e.parent != nil {
		panic("sim: RunUntil on a lane view")
	}
	if e.shards >= 2 && e.lookahead > 0 {
		return e.runSharded(deadline, true)
	}
	e.stopped = false
	e.checkIn = 0
	n := 0
	for len(e.queue) > 0 && !e.interrupted() {
		if e.queue[0].at > deadline {
			break
		}
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.recycle(ev) // before the callback: a schedule inside it reuses the slot
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// Run executes events in time order until no non-daemon events remain or
// Stop is called. Daemon events occurring before the last ordinary event
// still execute; trailing daemon events stay queued.
// It returns the number of events executed.
func (e *Engine) Run() int {
	if e.parent != nil {
		panic("sim: Run on a lane view")
	}
	if e.shards >= 2 && e.lookahead > 0 {
		return e.runSharded(0, false)
	}
	e.stopped = false
	e.checkIn = 0
	n := 0
	for e.normal > 0 && !e.interrupted() {
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.recycle(ev)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		n++
	}
	return n
}
