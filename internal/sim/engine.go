package sim

import "fmt"

// Event is a callback scheduled to run at a particular simulated time.
// Events scheduled for the same time run in scheduling order (stable).
// Daemon events (periodic refresh, idle timers) do not keep Run alive:
// Run returns once only daemon events remain.
//
// Event objects are owned by the engine and recycled through a free list
// once dispatched, so steady-state scheduling (the self-rescheduling
// timer pattern every model here uses) allocates nothing per event.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	daemon bool
}

// Engine is a deterministic discrete-event simulation engine.
// The zero value is not usable; call NewEngine.
//
// The event queue is a hand-rolled binary min-heap over (at, seq) rather
// than container/heap: the interface indirection and any-boxing of the
// stdlib heap cost real time on the dispatch path, which executes tens of
// millions of events per experiment sweep.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*Event
	free    []*Event // dispatched events awaiting reuse
	normal  int      // count of queued non-daemon events
	stopped bool

	checkEvery int         // poll the stop check every this many events
	checkIn    int         // events left until the next poll
	stopCheck  func() bool // nil: no external cancellation
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering events would
// corrupt every downstream statistic.
func (e *Engine) At(at Time, fn func()) {
	e.push(at, fn, false)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtDaemon schedules a daemon event: it runs normally under RunUntil and
// whenever ordinary events are still pending, but does not by itself keep
// Run alive. Use for perpetual background activity (refresh, idle timers).
func (e *Engine) AtDaemon(at Time, fn func()) {
	e.push(at, fn, true)
}

// AfterDaemon schedules a daemon event d after the current time.
func (e *Engine) AfterDaemon(d Time, fn func()) { e.AtDaemon(e.now+d, fn) }

func (e *Engine) push(at Time, fn func(), daemon bool) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	if !daemon {
		e.normal++
	}
	var ev *Event
	if k := len(e.free) - 1; k >= 0 {
		ev = e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		ev.at, ev.seq, ev.fn, ev.daemon = at, e.seq, fn, daemon
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	}
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// less orders the heap by time, then scheduling order.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			return
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	ev := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return ev
}

// recycle returns a dispatched event to the free list. The callback
// reference is dropped so the closure (and whatever it captures) is
// released even if the event idles on the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the event that is
// executing now finishes.
func (e *Engine) Stop() { e.stopped = true }

// DefaultStopCheckEvery is the polling stride SetStopCheck uses when the
// caller passes every <= 0. It trades cancellation latency (a few thousand
// events, microseconds of wall time) against predicate-call overhead on
// the hot dispatch loop.
const DefaultStopCheckEvery = 4096

// SetStopCheck installs an external cancellation predicate: Run and
// RunUntil poll stop every `every` executed events (and once on entry) and
// return early — exactly as if Stop had been called — when it reports
// true. The predicate must be cheap and may be called from this engine's
// run loop only; when several engines share one predicate (a parallel
// experiment sweep polling one job context), it must be safe to call
// concurrently with itself. every <= 0 selects DefaultStopCheckEvery; a
// nil stop clears the hook.
//
// This is the hook long-running services use to impose deadlines on
// otherwise-unbounded scenarios: the predicate typically closes over a
// context.Context's Err. A run aborted this way leaves the engine state
// (clock, queue) valid but the simulation incomplete; Interrupted reports
// whether that happened.
func (e *Engine) SetStopCheck(every int, stop func() bool) {
	if every <= 0 {
		every = DefaultStopCheckEvery
	}
	e.checkEvery = every
	e.checkIn = 0
	e.stopCheck = stop
}

// Interrupted reports whether the most recent Run or RunUntil returned
// early because of Stop or the SetStopCheck predicate rather than by
// exhausting its work.
func (e *Engine) Interrupted() bool { return e.stopped }

// interrupted polls the external stop check on its stride and folds the
// answer into e.stopped. Called once per loop iteration.
func (e *Engine) interrupted() bool {
	if e.stopped {
		return true
	}
	if e.stopCheck == nil {
		return false
	}
	if e.checkIn > 0 {
		e.checkIn--
		return false
	}
	e.checkIn = e.checkEvery - 1
	if e.stopCheck() {
		e.stopped = true
	}
	return e.stopped
}

// RunUntil executes events in time order until the queue is empty or the
// next event is later than deadline. The clock is left at the time of the
// last executed event (or at deadline if it advanced past all events).
// It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	e.checkIn = 0
	n := 0
	for len(e.queue) > 0 && !e.interrupted() {
		if e.queue[0].at > deadline {
			break
		}
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev) // before fn: a schedule inside fn reuses the slot
		fn()
		n++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// Run executes events in time order until no non-daemon events remain or
// Stop is called. Daemon events occurring before the last ordinary event
// still execute; trailing daemon events stay queued.
// It returns the number of events executed.
func (e *Engine) Run() int {
	e.stopped = false
	e.checkIn = 0
	n := 0
	for e.normal > 0 && !e.interrupted() {
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		fn()
		n++
	}
	return n
}
