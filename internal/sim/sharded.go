// Channel-sharded execution: intra-simulation parallelism that is
// byte-identical to the sequential engine.
//
// The model is conservative parallel discrete-event simulation with the
// determinism contract turned all the way up. One global heap and one
// global sequence counter stay authoritative — equal-time ties always
// resolve in schedule order, exactly as in the sequential engine — and
// parallelism is extracted only from provably independent prefixes of the
// dispatch order:
//
//   - Events carry a lane tag. Lane 0 is the global shard (workload
//     cores, kernel policy, request completions — anything that may touch
//     cross-channel state). Lanes 1..shards each own one channel's state;
//     a lane event may only read/write its lane's state, schedule further
//     events on its own lane, or schedule global events at least
//     `lookahead` in the future (AtGlobalFunc).
//   - The coordinator (the goroutine inside Run/RunUntil) dispatches
//     global events itself. When the heap's head is a lane event it peels
//     off a window: the maximal run of consecutive lane events, in global
//     (time, seq) order, that ends before the first queued global event
//     and before windowStart+lookahead. By the lane rules above, no event
//     outside the window can observe or perturb anything a window event
//     does, so the window partitions by lane into independent sequential
//     sub-executions.
//   - Each lane's slice of the window runs on its own worker (mini event
//     loops: a lane event scheduling its own lane inside the window —
//     e.g. a controller kick re-arm — is dispatched in-window). Every
//     schedule call a worker makes is recorded in a per-lane log rather
//     than applied.
//   - At the join, the coordinator merges the per-lane dispatch logs back
//     into the global (time, seq) order and replays the recorded schedule
//     calls in that order, assigning sequence numbers from the global
//     counter. The assigned values — and therefore all future tie-breaks
//     — are exactly the ones the sequential engine would have assigned.
//
// The lookahead is the minimum cross-shard message latency: the memory
// controller registers min(tCL, tCWL)+tBL, the earliest a command issued
// now can return data (and thereby touch a core on the global lane).
// Workloads whose global-lane events are dense (closed-loop cores
// reacting to every completion) produce short windows; the fan-out
// threshold then keeps dispatch on the sequential path, so sharding never
// costs more than the threshold test. See DESIGN.md §10.
package sim

import "fmt"

// DefaultShardFanout is the minimum window size (events) worth handing to
// workers; smaller windows dispatch sequentially. Purely a performance
// knob: results are identical at every setting.
const DefaultShardFanout = 8

// fanoutRetryStride is how many sequential dispatches to run after a
// failed window attempt before probing again, bounding the cost of window
// construction on workloads whose windows never reach the threshold.
const fanoutRetryStride = 64

// maxWindow bounds events popped into one window.
const maxWindow = 4096

// schedRec records one schedule call made during a window, to be replayed
// (or, for in-window lane events, sequence-stamped) at the merge.
type schedRec struct {
	at     Time
	lane   int32
	daemon bool
	mini   bool   // dispatched inside the window; not replayed
	seq    uint64 // assigned at merge time, in sequential order
	fn     func()
	afn    func(any)
	arg    any
}

// dispRec is one entry of a lane's dispatch log: which event ran and the
// range of schedule calls it made. Window events carry their real seq;
// mini events inherit the seq their creating call is assigned during the
// merge (available by the time the record is compared, since the creator
// dispatched — and so merged — strictly earlier).
type dispRec struct {
	at             Time
	seq            uint64
	createdBy      int32 // index into calls, or -1 for window events
	callOff, callN int32
}

// miniRef is a pending in-window lane event: an index into the lane's
// call log, heap-ordered by (at, idx). Creation order (idx) is exactly
// sequential seq order for equal times: every in-window call outranks
// every window event's pre-assigned seq, and within the lane calls are
// made in sequential order.
type miniRef struct {
	at  Time
	idx int32
}

// laneState is one lane view's window-execution state. The coordinator
// fills win/horizon and flips active before the hand-off; the worker owns
// every field until the join; the coordinator reads the logs after.
type laneState struct {
	active  bool
	now     Time
	horizon Time
	win     []*Event
	calls   []schedRec
	log     []dispRec
	mini    []miniRef
	task    func() // bound once: run the window, then signal the join
}

type shardPool struct {
	tasks chan func()
	n     int      // spawned workers
	rel   []func() // budget releases, one per worker (may be nil)
}

// SetShards enables channel-sharded execution with n per-channel lanes
// (n <= 1 disables it; events still dispatch identically). Call before
// handing out Lane views. Sharded dispatch additionally requires a
// registered lookahead (SetShardLookahead); without one the engine runs
// sequentially regardless of n.
func (e *Engine) SetShards(n int) {
	if e.parent != nil {
		panic("sim: SetShards on a lane view")
	}
	if e.lanes != nil {
		panic("sim: SetShards after Lane views were created")
	}
	if n < 0 {
		n = 0
	}
	e.shards = n
	if e.fanoutMin == 0 {
		e.fanoutMin = DefaultShardFanout
	}
}

// Shards reports the configured lane count (0 = sharding off).
func (e *Engine) Shards() int { return e.shards }

// SetShardLookahead registers d as an upper bound on how soon a lane
// event may schedule onto the global lane: every AtGlobalFunc call made
// from lane context must land at least d after the window start. The
// memory controller registers its minimum data-return latency. Multiple
// registrations keep the minimum. d <= 0 is ignored.
func (e *Engine) SetShardLookahead(d Time) {
	if e.parent != nil {
		panic("sim: SetShardLookahead on a lane view")
	}
	if d <= 0 {
		return
	}
	if e.lookahead == 0 || d < e.lookahead {
		e.lookahead = d
	}
}

// ShardLookahead reports the registered lookahead (0 = none).
func (e *Engine) ShardLookahead() Time { return e.lookahead }

// FanoutWindows reports how many fan-out windows this engine has
// dispatched across workers so far (always 0 with sharding off).
// Observability for tuning the fan-out threshold, and how tests prove a
// sharded run actually exercised the parallel path.
func (e *Engine) FanoutWindows() int { return e.windows }

// SetShardFanout sets the minimum window size worth fanning out to
// workers (min <= 0 restores DefaultShardFanout). Purely a performance
// knob — results are byte-identical at every setting — exposed so tests
// can force fan-out on tiny workloads.
func (e *Engine) SetShardFanout(min int) {
	if min <= 0 {
		min = DefaultShardFanout
	}
	e.fanoutMin = min
}

// SetShardBudget installs a shared goroutine budget for shard workers:
// each worker beyond the coordinator spawns only if acquire reports true,
// and calls release when the run ends. greendimmd wires the machine-wide
// sweep.Limiter here so per-job parallelism × engine shards cannot
// oversubscribe the CPU budget; lanes that get no worker run on the
// coordinator, with identical results.
func (e *Engine) SetShardBudget(acquire func() bool, release func()) {
	e.budgetAcq, e.budgetRel = acquire, release
}

// Lane returns the engine handle for channel k's shard. With sharding off
// it is the engine itself, so model code is written once against the view
// API. Views support Now and the At/After scheduling family (tagged with
// the lane), plus AtGlobalFunc for cross-shard messages; they cannot Run.
// Channels map onto lanes round-robin (1 + k%shards), so any channel
// count works with any shard count.
func (e *Engine) Lane(k int) *Engine {
	if e.parent != nil {
		panic("sim: Lane on a lane view")
	}
	if k < 0 {
		panic(fmt.Sprintf("sim: negative lane key %d", k))
	}
	if e.shards <= 0 {
		return e
	}
	id := 1 + k%e.shards
	if e.lanes == nil {
		e.lanes = make([]*Engine, e.shards+1)
	}
	v := e.lanes[id]
	if v == nil {
		ls := &laneState{}
		v = &Engine{parent: e, lane: int32(id), ls: ls}
		ls.task = func() { ls.run(); e.wg.Done() }
		e.lanes[id] = v
	}
	return v
}

// AtGlobalFunc schedules fn(arg) on the global lane at absolute time at.
// On the root engine (or with sharding off) it is exactly AtFunc. From
// lane context inside a window, at must be at least the registered
// lookahead past the window start — the controller's data-return path
// guarantees this — or the call panics, because the sequential engine
// would have interleaved the event mid-window.
func (e *Engine) AtGlobalFunc(at Time, fn func(any), arg any) {
	if e.parent != nil {
		e.laneSched(at, 0, nil, fn, arg, false)
		return
	}
	e.pushArg(at, fn, arg, false)
}

// laneSched handles every schedule request arriving through a lane view.
// Outside a window it is a direct tagged push on the root engine; inside
// a window it is appended to the lane's call log, becoming a mini event
// when it targets this lane within the window horizon.
func (v *Engine) laneSched(at Time, lane int32, fn func(), afn func(any), arg any, daemon bool) {
	ls := v.ls
	if !ls.active {
		p := v.parent
		ev := p.alloc(at, daemon)
		ev.lane = lane
		ev.fn, ev.afn, ev.arg = fn, afn, arg
		p.queue = append(p.queue, ev)
		p.siftUp(len(p.queue) - 1)
		return
	}
	if at < ls.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, ls.now))
	}
	mini := lane == v.lane && at < ls.horizon
	if lane != v.lane && at < ls.horizon {
		panic(fmt.Sprintf(
			"sim: cross-shard event at %v inside the lookahead window ending at %v (registered lookahead too large for the model)",
			at, ls.horizon))
	}
	idx := int32(len(ls.calls))
	ls.calls = append(ls.calls, schedRec{at: at, lane: lane, daemon: daemon, mini: mini, fn: fn, afn: afn, arg: arg})
	if mini {
		ls.miniPush(miniRef{at: at, idx: idx})
	}
}

// --- lane worker ---

// run executes the lane's slice of the window: the pre-popped window
// events (already in global dispatch order) merged with in-window lane
// events by (time, then window-before-mini, then creation order) — which
// is exactly the sequential dispatch order restricted to this lane, since
// window events' seqs all predate in-window ones.
func (ls *laneState) run() {
	i := 0
	for i < len(ls.win) || len(ls.mini) > 0 {
		if i < len(ls.win) && (len(ls.mini) == 0 || ls.win[i].at <= ls.mini[0].at) {
			ev := ls.win[i]
			i++
			ls.now = ev.at
			off := int32(len(ls.calls))
			if ev.afn != nil {
				ev.afn(ev.arg)
			} else {
				ev.fn()
			}
			ls.log = append(ls.log, dispRec{at: ev.at, seq: ev.seq, createdBy: -1, callOff: off, callN: int32(len(ls.calls)) - off})
		} else {
			m := ls.miniPop()
			sc := ls.calls[m.idx] // copy: the callback may grow ls.calls
			ls.now = m.at
			off := int32(len(ls.calls))
			if sc.afn != nil {
				sc.afn(sc.arg)
			} else {
				sc.fn()
			}
			ls.log = append(ls.log, dispRec{at: m.at, createdBy: m.idx, callOff: off, callN: int32(len(ls.calls)) - off})
		}
	}
}

func (ls *laneState) miniPush(m miniRef) {
	ls.mini = append(ls.mini, m)
	q := ls.mini
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !miniLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (ls *laneState) miniPop() miniRef {
	q := ls.mini
	m := q[0]
	n := len(q) - 1
	q[0] = q[n]
	ls.mini = q[:n]
	q = ls.mini
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && miniLess(q[r], q[l]) {
			c = r
		}
		if !miniLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return m
}

func miniLess(a, b miniRef) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.idx < b.idx
}

// --- coordinator ---

// runSharded is the sharded replacement for the Run/RunUntil loops
// (bounded selects RunUntil semantics with the given deadline). Global
// events dispatch on the coordinator exactly as in the sequential loop;
// runs of lane events fan out through tryWindow.
func (e *Engine) runSharded(deadline Time, bounded bool) int {
	e.stopped = false
	e.checkIn = 0
	defer e.stopPool()
	n := 0
	for !e.interrupted() {
		if bounded {
			if len(e.queue) == 0 || e.queue[0].at > deadline {
				break
			}
		} else if e.normal <= 0 {
			break
		}
		if e.queue[0].lane != 0 && e.stride <= 0 {
			if w := e.tryWindow(deadline, bounded); w > 0 {
				n += w
				continue
			}
			e.stride = fanoutRetryStride
		} else if e.stride > 0 {
			e.stride--
		}
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.now = ev.at
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.recycle(ev)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		n++
	}
	if bounded && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}

// tryWindow peels a window off the head of the queue, fans it out, and
// merges the results; it returns the number of events dispatched, or 0
// after restoring the queue untouched when the window is not worth the
// hand-off (too few events, or a single lane).
func (e *Engine) tryWindow(deadline Time, bounded bool) int {
	t0 := e.queue[0].at
	horizon := t0 + e.lookahead
	if bounded && deadline+1 < horizon {
		horizon = deadline + 1 // window events must obey the deadline
	}
	e.scratch = e.scratch[:0]
	for len(e.queue) > 0 && len(e.scratch) < maxWindow {
		head := e.queue[0]
		if head.lane == 0 || head.at >= horizon {
			break
		}
		// Run stops at the last ordinary event; keep at least one ordinary
		// event outside the window so no trailing daemon dispatches that
		// the sequential loop would never have run.
		if !bounded && !head.daemon && e.normal == 1 {
			break
		}
		ev := e.popMin()
		if !ev.daemon {
			e.normal--
		}
		e.scratch = append(e.scratch, ev)
	}

	// Distribute by lane, preserving global order within each lane.
	e.activeLanes = e.activeLanes[:0]
	for _, ev := range e.scratch {
		ls := e.lanes[ev.lane].ls
		if len(ls.win) == 0 {
			e.activeLanes = append(e.activeLanes, ls)
		}
		ls.win = append(ls.win, ev)
	}

	if len(e.scratch) < e.fanoutMin || len(e.activeLanes) < 2 {
		for _, ls := range e.activeLanes {
			ls.win = ls.win[:0]
		}
		for _, ev := range e.scratch {
			if !ev.daemon {
				e.normal++
			}
			e.queue = append(e.queue, ev)
			e.siftUp(len(e.queue) - 1)
		}
		clearEvents(e.scratch)
		return 0
	}

	// The in-window (mini) horizon is additionally capped by the earliest
	// event still queued: a queued global (or an unpopped lane event) at
	// time T must dispatch before any in-window schedule landing at or
	// after T, so minis are confined strictly before it. Deferred calls at
	// or past this cap replay into the heap with merge-assigned seqs and
	// order correctly against it.
	if len(e.queue) > 0 && e.queue[0].at < horizon {
		horizon = e.queue[0].at
	}

	// Fan out: the coordinator takes the first lane; the rest go to pool
	// workers when the budget allows, and run inline here otherwise —
	// placement never affects results.
	for _, ls := range e.activeLanes {
		ls.horizon = horizon
		ls.now = t0
		ls.active = true
	}
	e.ensurePool(len(e.activeLanes) - 1)
	handed := 0
	for _, ls := range e.activeLanes[1:] {
		if handed < e.pool.n {
			e.wg.Add(1)
			e.pool.tasks <- ls.task
			handed++
		} else {
			ls.run()
		}
	}
	e.activeLanes[0].run()
	e.wg.Wait()

	n := e.mergeWindow()
	e.windows++

	for _, ls := range e.activeLanes {
		ls.active = false
		clearCalls(ls.calls)
		ls.calls = ls.calls[:0]
		ls.log = ls.log[:0]
		ls.win = ls.win[:0]
	}
	for _, ev := range e.scratch {
		e.recycle(ev)
	}
	clearEvents(e.scratch)
	return n
}

// mergeWindow re-establishes the sequential order across the lanes'
// dispatch logs and replays every recorded schedule call in that order,
// consuming sequence numbers exactly as the sequential engine would have:
// in-window dispatches get their calls stamped, everything else is pushed
// back into the global heap. Returns the number of events dispatched.
func (e *Engine) mergeWindow() int {
	e.mergeIdx = e.mergeIdx[:0]
	n := 0
	for _, ls := range e.activeLanes {
		e.mergeIdx = append(e.mergeIdx, 0)
		n += len(ls.log)
	}
	for {
		best := -1
		var bAt Time
		var bSeq uint64
		for li, ls := range e.activeLanes {
			k := e.mergeIdx[li]
			if k >= len(ls.log) {
				continue
			}
			r := &ls.log[k]
			s := r.seq
			if r.createdBy >= 0 {
				// The creating call merged strictly earlier, so its seq is
				// already assigned.
				s = ls.calls[r.createdBy].seq
			}
			if best < 0 || r.at < bAt || (r.at == bAt && s < bSeq) {
				best, bAt, bSeq = li, r.at, s
			}
		}
		if best < 0 {
			break
		}
		ls := e.activeLanes[best]
		r := &ls.log[e.mergeIdx[best]]
		e.mergeIdx[best]++
		for j := r.callOff; j < r.callOff+r.callN; j++ {
			sc := &ls.calls[j]
			e.seq++
			sc.seq = e.seq
			if !sc.mini {
				e.replayPush(sc)
			}
		}
	}
	return n
}

// replayPush inserts a deferred schedule call into the global heap with
// its merge-assigned sequence number.
func (e *Engine) replayPush(sc *schedRec) {
	var ev *Event
	if k := len(e.free) - 1; k >= 0 {
		ev = e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq, ev.daemon, ev.lane = sc.at, sc.seq, sc.daemon, sc.lane
	ev.fn, ev.afn, ev.arg = sc.fn, sc.afn, sc.arg
	if !sc.daemon {
		e.normal++
	}
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Engine) ensurePool(want int) {
	if max := e.shards - 1; want > max {
		want = max
	}
	if e.pool == nil {
		e.pool = &shardPool{tasks: make(chan func())}
	}
	for e.pool.n < want {
		var rel func()
		if e.budgetAcq != nil {
			if !e.budgetAcq() {
				break
			}
			rel = e.budgetRel
		}
		e.pool.rel = append(e.pool.rel, rel)
		go func(tasks chan func()) {
			for f := range tasks {
				f()
			}
		}(e.pool.tasks)
		e.pool.n++
	}
}

// stopPool ends the run's workers and returns their budget slots. Workers
// are per-run so sweeps that build thousands of engines leak nothing.
func (e *Engine) stopPool() {
	if e.pool == nil {
		return
	}
	close(e.pool.tasks)
	for _, rel := range e.pool.rel {
		if rel != nil {
			rel()
		}
	}
	e.pool = nil
}

// clearEvents drops the pointers a reused scratch slice retains.
func clearEvents(s []*Event) {
	for i := range s {
		s[i] = nil
	}
}

// clearCalls drops callback/argument references so a reused call log
// retains nothing between windows.
func clearCalls(s []schedRec) {
	for i := range s {
		s[i] = schedRec{}
	}
}
