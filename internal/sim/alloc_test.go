package sim

import "testing"

// TestDispatchSteadyStateAllocs locks in the free-list contract: once the
// engine has warmed up, a self-rescheduling timer (the dominant pattern in
// every model) dispatches and reschedules without allocating — the Event
// recycled on pop is reused by the schedule inside the callback.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var step func()
	step = func() { e.After(Nanosecond, step) }
	e.After(Nanosecond, step)
	e.RunUntil(100 * Nanosecond) // warm up queue and free list

	deadline := e.Now()
	avg := testing.AllocsPerRun(1000, func() {
		deadline += Nanosecond
		e.RunUntil(deadline)
	})
	if avg != 0 {
		t.Fatalf("steady-state dispatch allocates %.2f allocs/op, want 0", avg)
	}
}

// TestFreeListReusesEvents checks the recycle path directly: a drained
// engine reuses its dispatched Event objects for new schedules instead of
// allocating fresh ones.
func TestFreeListReusesEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 64; i++ {
		e.After(Time(i), func() { ran++ })
	}
	e.Run()
	if ran != 64 {
		t.Fatalf("ran %d of 64 events", ran)
	}
	if got := len(e.free); got != 64 {
		t.Fatalf("free list holds %d events after drain, want 64", got)
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			e.After(Time(i), func() { ran++ })
		}
		e.Run()
	})
	// The per-iteration closures may allocate; the Events must not. Allow
	// the closure allocations (64) but not 2x (closure + event).
	if avg > 64 {
		t.Fatalf("drain/refill cycle allocates %.1f/op; events are not being reused", avg)
	}
}

// TestRecycledEventOrdering re-checks FIFO-at-equal-time stability through
// the free list: recycled events must not leak stale sequence numbers.
func TestRecycledEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	// First wave fills the free list.
	for i := 0; i < 8; i++ {
		e.After(Nanosecond, func() {})
	}
	e.Run()
	// Second wave: same timestamp, order must follow scheduling order.
	for i := 0; i < 8; i++ {
		i := i
		e.At(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}
