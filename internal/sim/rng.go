package sim

import (
	"math"
	"math/rand"
)

// RNG is the deterministic random source used by every stochastic model in
// the simulator. It wraps math/rand with the distributions the workload and
// trace models need. A nil *RNG is never valid; construct with NewRNG.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a source seeded with seed. Equal seeds yield identical
// streams, which keeps every experiment reproducible.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream. The child's sequence depends
// only on the parent's state at the time of the call, so forking at fixed
// points in setup code keeps component streams decoupled: drawing more
// numbers in one component does not perturb another.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Float64 returns a uniform number in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Normal returns a normally distributed value.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value where mu and sigma are
// the parameters of the underlying normal (natural-log space).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Pareto returns a Pareto-distributed value with minimum xm and shape alpha.
// Used for VM lifetimes, which are heavy-tailed in the Azure trace.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns values in [0, n) following a Zipf distribution with exponent
// s > 1 is not required; s == 0 degenerates to uniform. Implemented by
// inverse-CDF over precomputed weights would be heavy for large n, so this
// uses rejection-free cumulative search over a harmonic table cached per
// call site via ZipfGen.
type ZipfGen struct {
	g   *RNG
	cum []float64
}

// NewZipf builds a Zipf generator over [0, n) with exponent s.
func (g *RNG) NewZipf(n int, s float64) *ZipfGen {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfGen{g: g, cum: cum}
}

// Next draws the next Zipf-distributed index.
func (z *ZipfGen) Next() int {
	u := z.g.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice, matching the "impossible input" convention used across this repo.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// WeightedPick returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative and not all zero.
func (g *RNG) WeightedPick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
