package sim

import "testing"

// BenchmarkEngineSchedule measures heap insertion: N events pushed at
// pseudo-random times, none executed.
func BenchmarkEngineSchedule(b *testing.B) {
	fn := func() {}
	rng := NewRNG(1)
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Time(rng.Int63n(int64(Hour))), fn)
	}
}

// BenchmarkEngineDispatchChain measures the dispatch fast path: a single
// self-rescheduling event, so the heap stays tiny and the cost is almost
// pure pop/push/callback.
func BenchmarkEngineDispatchChain(b *testing.B) {
	e := NewEngine()
	var step func()
	step = func() { e.After(Nanosecond, step) }
	e.After(Nanosecond, step)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(Time(b.N) * Nanosecond)
}

// BenchmarkEngineDispatchWide measures dispatch with a deep heap: 4096
// concurrent self-rescheduling timers with scattered periods.
func BenchmarkEngineDispatchWide(b *testing.B) {
	const timers = 4096
	e := NewEngine()
	rng := NewRNG(1)
	for i := 0; i < timers; i++ {
		period := Nanosecond + Time(rng.Int63n(int64(Microsecond)))
		var step func()
		step = func() { e.AfterDaemon(period, step) }
		e.AfterDaemon(period, step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	ran := 0
	for deadline := Microsecond; ran < b.N; deadline += Microsecond {
		ran += e.RunUntil(deadline)
	}
}

// BenchmarkEngineDispatchStopCheck is BenchmarkEngineDispatchChain with
// the cancellation hook installed at the default stride — the overhead a
// daemon-run job pays versus a CLI run.
func BenchmarkEngineDispatchStopCheck(b *testing.B) {
	e := NewEngine()
	e.SetStopCheck(0, func() bool { return false })
	var step func()
	step = func() { e.After(Nanosecond, step) }
	e.After(Nanosecond, step)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(Time(b.N) * Nanosecond)
}
